"""The diagnosis graph (``Diag_Graph`` in Algorithm 1).

An undirected graph over the ``n`` processors.  An edge means mutual trust;
a missing edge means the two endpoints accuse each other.  It starts
complete, only ever loses edges, and evolves identically at every
fault-free processor because every update is driven by information
disseminated through ``Broadcast_Single_Bit``.

Invariants maintained by the protocol (paper §2, proven in Lemma 4):

* every removed edge has at least one faulty endpoint ("bad" edges only);
* fault-free processors trust each other forever;
* a vertex that loses more than ``t`` edges belongs to a faulty processor,
  which is then *isolated* (all remaining edges removed, never re-added).

The class itself enforces only the structural rules (monotone removal,
isolation bookkeeping); the semantic invariants are checked by the test
suite against ground-truth fault sets.

Adjacency is backed by an ``(n, n)`` boolean matrix so the engines'
hot-path trust filtering is a single mask lookup (:meth:`trust_mask`)
instead of per-edge :meth:`trusts` calls; the symmetric matrix and the
removal history are kept in lockstep.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graphs.cliques import find_clique_matrix


class DiagnosisGraph:
    """Mutable trust graph with removal history.

    >>> graph = DiagnosisGraph(4)
    >>> graph.trusts(0, 1)
    True
    >>> graph.remove_edge(0, 1)
    True
    >>> graph.trusts(0, 1)
    False
    >>> graph.removed_edges_at(0)
    1
    """

    def __init__(self, n: int):
        if n < 2:
            raise ValueError("need at least 2 processors, got %d" % n)
        self.n = n
        adj = np.ones((n, n), dtype=bool)
        np.fill_diagonal(adj, False)
        self._adj: np.ndarray = adj
        self._removed: Set[FrozenSet[int]] = set()
        self._isolated: Set[int] = set()

    # -- queries ------------------------------------------------------------

    def trusts(self, i: int, j: int) -> bool:
        """True iff the edge (i, j) is present.  A processor trusts itself."""
        self._check(i)
        self._check(j)
        if i == j:
            return True
        return bool(self._adj[i, j])

    def trust_mask(self) -> np.ndarray:
        """The adjacency matrix as a read-only boolean mask.

        ``mask[i, j]`` is True iff ``i`` and ``j`` (``i != j``) trust each
        other; the diagonal is False.  The view is backed by live graph
        state — it reflects subsequent removals — and is marked
        non-writeable so callers cannot bypass :meth:`remove_edge`.
        """
        view = self._adj.view()
        view.flags.writeable = False
        return view

    def trusted_by(self, i: int) -> Set[int]:
        """The set of processors ``i`` trusts (excluding itself)."""
        self._check(i)
        return set(map(int, np.flatnonzero(self._adj[i])))

    def degree(self, i: int) -> int:
        self._check(i)
        return int(self._adj[i].sum())

    def removed_edges_at(self, i: int) -> int:
        """How many of ``i``'s original ``n - 1`` edges have been removed."""
        self._check(i)
        return (self.n - 1) - self.degree(i)

    def is_isolated(self, i: int) -> bool:
        """True iff ``i`` has been explicitly isolated as identified-faulty."""
        self._check(i)
        return i in self._isolated

    @property
    def isolated(self) -> Set[int]:
        return set(self._isolated)

    def is_complete(self) -> bool:
        """True iff no edge has ever been removed (the failure-free state)."""
        return not self._removed

    def edges(self) -> List[Tuple[int, int]]:
        """All present edges as sorted (i, j) pairs with i < j."""
        upper = np.triu(self._adj, k=1)
        return [(int(i), int(j)) for i, j in np.argwhere(upper)]

    def removed_edges(self) -> List[Tuple[int, int]]:
        """All removed edges as sorted (i, j) pairs with i < j."""
        return sorted(tuple(sorted(edge)) for edge in self._removed)

    # -- mutation -----------------------------------------------------------

    def _check(self, i: int) -> None:
        if not 0 <= i < self.n:
            raise ValueError("vertex %d out of range [0, %d)" % (i, self.n))

    def remove_edge(self, i: int, j: int) -> bool:
        """Remove edge (i, j); returns True if it was present."""
        self._check(i)
        self._check(j)
        if i == j:
            raise ValueError("diagnosis graph has no self-edges")
        if not self._adj[i, j]:
            return False
        self._adj[i, j] = False
        self._adj[j, i] = False
        self._removed.add(frozenset((i, j)))
        return True

    def isolate(self, i: int) -> None:
        """Mark ``i`` identified-faulty and drop all its remaining edges."""
        self._check(i)
        self._isolated.add(i)
        for j in map(int, np.flatnonzero(self._adj[i])):
            self.remove_edge(i, j)

    def apply_overdegree_rule(self, t: int) -> List[int]:
        """Line 3(g): isolate every vertex with more than ``t`` removed edges.

        Returns the newly isolated vertices (sorted).  Isolating a vertex
        removes edges, which can push *other* vertices over the threshold,
        but only vertices already over it at call time are isolated — the
        paper applies the rule to edges removed "so far", and cascades are
        picked up on the next diagnosis.  (Fault-free vertices can never
        exceed the threshold: they keep their >= n - t - 1 mutual edges.)
        """
        degrees = self._adj.sum(axis=1)
        over = [
            i
            for i in range(self.n)
            if i not in self._isolated
            and (self.n - 1) - int(degrees[i]) >= t + 1
        ]
        for i in over:
            self.isolate(i)
        return over

    # -- set finding ----------------------------------------------------------

    def find_trusting_set(
        self, size: int, candidates: Optional[Sequence[int]] = None
    ) -> Optional[List[int]]:
        """A ``size``-subset of ``candidates`` that pairwise trust each other.

        Used for ``P_decide`` (line 3(h)).  Deterministic; returns ``None``
        if no such set exists.  Runs on the adjacency matrix directly — no
        per-vertex set materialization.
        """
        return find_clique_matrix(self._adj, size, candidates)

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible snapshot (for checkpointing across sessions).

        The diagnosis graph is the only protocol state that must survive
        between generations, so persisting it lets a deployment resume
        consensus on a new value without re-learning fault locations.
        """
        return {
            "n": self.n,
            "removed": self.removed_edges(),
            "isolated": sorted(self._isolated),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "DiagnosisGraph":
        """Inverse of :meth:`to_dict`; validates structural consistency."""
        graph = cls(int(payload["n"]))
        for edge in payload.get("removed", []):
            i, j = int(edge[0]), int(edge[1])
            graph.remove_edge(i, j)
        for pid in payload.get("isolated", []):
            graph.isolate(int(pid))
        return graph

    def copy(self) -> "DiagnosisGraph":
        dup = DiagnosisGraph(self.n)
        dup._adj = self._adj.copy()
        dup._removed = set(self._removed)
        dup._isolated = set(self._isolated)
        return dup

    def __repr__(self) -> str:
        return "DiagnosisGraph(n=%d, removed=%d, isolated=%r)" % (
            self.n,
            len(self._removed),
            sorted(self._isolated),
        )
