"""Randomized common-coin 1-bit broadcast (Mostefaoui-Raynal / Ben-Or).

Construction: the source sends its bit to everybody (one round), then all
processors run a synchronous round-based randomized binary consensus in
the Mostefaoui-Raynal shape on what they received:

1. **BV-broadcast (EST phase)** — every processor broadcasts its current
   estimate, then *echoes* any value it has seen from ``t + 1`` distinct
   senders (so at least one honest one), repeating echo sub-rounds to a
   fixpoint; values seen from ``2t + 1`` distinct senders are delivered
   into ``bin_values``.  At the fixpoint ``bin_values`` is identical at
   every fault-free processor: a value echoed by ``t + 1`` honest senders
   is echoed by *all* of them (count ``>= n - t >= 2t + 1`` everywhere),
   while a value with at most ``t`` honest senders never clears ``2t``
   anywhere.
2. **AUX phase** — every processor sends one value of its ``bin_values``;
   a processor collects the received AUX values that lie in its own
   ``bin_values`` into ``values``.
3. **Common coin** — all processors observe one shared random bit
   (pluggable: :class:`SeededCoin` replays from a seed,
   :class:`RiggedCoin` forces scripted worst cases, and the
   ``coin_reveal`` adversary hook models a corruptible dealer).  If
   ``values == {v}`` the estimate becomes ``v`` and the processor
   *decides* ``v`` when ``v`` equals the coin; if both values survived,
   the estimate becomes the coin.

Safety is deterministic — two fault-free processors can only decide the
same value in any execution — while termination is probabilistic: each
round decides with probability 1/2 under a fair coin, so the expected
round count is a small constant (the per-instance distribution is
recorded in ``BroadcastStats.extras``).  A scripted or revealed coin can
stall progress, so after ``round_cap`` rounds the coin derandomizes to
``round & 1`` (ignoring :attr:`coin` and the ``coin_reveal`` hook),
bounding every execution.

Unlike the deterministic backends this one is declared
``error_free = False``: engines must not template-price or vectorize
over it, because its cost is a random variable of the seed.

>>> backend = MostefaouiBroadcast(n=4, t=1, seed=7)
>>> outcome = backend.broadcast_bit(source=0, bit=1, tag="demo")
>>> sorted(set(outcome.values()))
[1]
>>> backend.stats.extras["rounds_total"] >= 1
True
"""

from __future__ import annotations

import abc
from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from repro.broadcast_bit.interface import BroadcastBackend
from repro.network.metrics import BitMeter
from repro.network.simulator import SyncNetwork
from repro.processors.adversary import Adversary, GlobalView
from repro.utils.rng import derive_seed


class CommonCoin(abc.ABC):
    """One shared random bit per (instance, round), observed by everybody."""

    @abc.abstractmethod
    def flip(self, instance: int, round_index: int) -> int:
        """The coin of ``round_index`` in broadcast ``instance`` (0 or 1)."""


class SeededCoin(CommonCoin):
    """Deterministic fair coin: a stable hash of (seed, instance, round).

    Stateless, so packed and scalar dispatch paths (and replays) observe
    identical flips regardless of evaluation order.

    >>> SeededCoin(3).flip(0, 1) == SeededCoin(3).flip(0, 1)
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = seed

    def flip(self, instance: int, round_index: int) -> int:
        return derive_seed(self.seed, "mostefaoui.coin", instance, round_index) & 1


class RiggedCoin(CommonCoin):
    """Scripted coin for worst-case tests: ``schedule[round]``, last value
    repeating once the script runs out.

    Rig the coin against the only deliverable value and no round can
    decide until the backend's ``round_cap`` derandomization kicks in —
    the deterministic worst-case round count.
    """

    def __init__(self, schedule: Sequence[int]):
        if not schedule:
            raise ValueError("RiggedCoin needs a non-empty schedule")
        if any(bit not in (0, 1) for bit in schedule):
            raise ValueError("RiggedCoin schedule must hold bits")
        self.schedule = list(schedule)

    def flip(self, instance: int, round_index: int) -> int:
        return self.schedule[min(round_index, len(self.schedule) - 1)]


class MostefaouiBroadcast(BroadcastBackend):
    """Randomized broadcast; every message moves over a real
    :class:`~repro.network.simulator.SyncNetwork` round.

    Faulty processors act through three hooks: ``est_value`` (per-edge
    EST payloads, ``None`` = silent), ``aux_value`` (per-edge AUX
    payloads) and ``coin_reveal`` (the dealer's coin for one round).
    The batched entry points inherit the base class's per-instance
    dispatch — a randomized instance cannot be replayed from accounting
    alone, so ``constant_cost_honest`` stays False and the engines force
    their scalar path exactly as they do for ``dolev_strong``.
    """

    name = "mostefaoui"
    error_free = False
    constant_cost_honest = False

    def __init__(
        self,
        n: int,
        t: int,
        meter: Optional[BitMeter] = None,
        adversary: Optional[Adversary] = None,
        view_provider=None,
        seed: int = 0,
        coin: Optional[CommonCoin] = None,
        round_cap: int = 32,
    ):
        super().__init__(n, t, meter, adversary, view_provider)
        if round_cap < 1:
            raise ValueError("round_cap must be positive, got %d" % round_cap)
        self.seed = seed
        self.coin = coin if coin is not None else SeededCoin(seed)
        #: Rounds after which the coin derandomizes to ``round & 1``
        #: (ignoring the coin object and the ``coin_reveal`` hook), so no
        #: adversarial coin can stall termination forever.
        self.round_cap = round_cap
        self.network = SyncNetwork(n, self.meter)

    # -- protocol --------------------------------------------------------------

    def _broadcast_one(
        self, source: int, bit: int, tag: str, ignored: FrozenSet[int]
    ) -> Dict[int, int]:
        instance = self._next_instance()
        view = self._view()
        adversary = self.adversary
        active = [pid for pid in range(self.n) if pid not in ignored]
        honest_active = [pid for pid in active if not adversary.controls(pid)]
        before = self.meter.total_bits

        est = self._source_round(source, bit, tag, instance, active, view)
        decided: Dict[int, Optional[int]] = {pid: None for pid in active}
        rounds = 0
        while True:
            r = rounds
            bin_values = self._bv_broadcast(
                est, active, r, instance, tag, view
            )
            aux = {
                pid: (
                    est[pid]
                    if est[pid] in bin_values[pid] or not bin_values[pid]
                    else min(bin_values[pid])
                )
                for pid in active
            }
            received_aux = self._aux_round(
                aux, active, r, instance, tag, view
            )
            coin = self._coin(instance, r, view)
            for pid in active:
                vals = received_aux[pid] & bin_values[pid]
                if len(vals) == 1:
                    (v,) = vals
                    est[pid] = v
                    if v == coin and decided[pid] is None:
                        decided[pid] = v
                elif len(vals) == 2:
                    est[pid] = coin
            rounds += 1
            if all(decided[pid] is not None for pid in honest_active):
                break
            if rounds > self.round_cap + 8:
                raise AssertionError(
                    "mostefaoui instance %d failed to terminate within "
                    "%d rounds (degenerate active set %r?)"
                    % (instance, rounds, active)
                )

        self.stats.bits_charged += self.meter.total_bits - before
        extras = self.stats.extras
        extras["rounds_total"] = extras.get("rounds_total", 0) + rounds
        extras["rounds_max"] = max(extras.get("rounds_max", 0), rounds)
        extras["decided_instances"] = extras.get("decided_instances", 0) + 1
        hist_key = "rounds_%d" % min(rounds, 9)
        extras[hist_key] = extras.get(hist_key, 0) + 1

        result = {
            pid: (
                decided[pid] if decided[pid] is not None else est[pid]
            )
            for pid in active
        }
        for pid in range(self.n):
            result.setdefault(pid, 0)
        return result

    def _source_round(
        self,
        source: int,
        bit: int,
        tag: str,
        instance: int,
        active: List[int],
        view: GlobalView,
    ) -> Dict[int, int]:
        """The source sends its bit to everybody; per-edge equivocation
        and silence through ``bsb_source_bit`` exactly like Phase-King."""
        source_tag = "%s.source" % tag
        adversary = self.adversary
        for recipient in active:
            if recipient == source:
                continue
            payload: Optional[int] = bit
            if adversary.controls(source):
                payload = adversary.bsb_source_bit(
                    source, recipient, bit, instance, view
                )
            self.network.send(source, recipient, payload, 1, source_tag)
        inboxes = self.network.deliver()
        est = {}
        for pid in active:
            received: Optional[int] = None
            for message in inboxes[pid]:
                if message.tag == source_tag and message.payload in (0, 1):
                    received = message.payload
            est[pid] = received if received is not None else 0
        est[source] = bit
        return est

    def _bv_broadcast(
        self,
        est: Dict[int, int],
        active: List[int],
        round_index: int,
        instance: int,
        tag: str,
        view: GlobalView,
    ) -> Dict[int, Set[int]]:
        """EST phase: broadcast estimates, echo at ``t + 1`` distinct
        senders to a fixpoint, deliver into ``bin_values`` at ``2t + 1``.

        One network round per echo sub-round; a processor's message
        carries the tuple of values it newly broadcasts this sub-round
        (one bit each), so the one-message-per-edge-per-round network
        invariant holds even when both values cascade together.
        """
        est_tag = "%s.est" % tag
        adversary = self.adversary
        senders_of: Dict[int, Dict[int, Set[int]]] = {
            pid: {0: set(), 1: set()} for pid in active
        }
        sent_vals: Dict[int, Set[int]] = {pid: set() for pid in active}
        pending: Dict[int, List[int]] = {pid: [est[pid]] for pid in active}
        sub_rounds = 0
        while any(pending.values()):
            for pid in active:
                todo = pending[pid]
                pending[pid] = []
                if not todo:
                    continue
                for value in todo:
                    sent_vals[pid].add(value)
                    senders_of[pid][value].add(pid)  # own copy, untransmitted
                for recipient in active:
                    if recipient == pid:
                        continue
                    out: List[int] = []
                    for value in todo:
                        payload: Optional[int] = value
                        if adversary.controls(pid):
                            payload = adversary.est_value(
                                pid, recipient, value, round_index,
                                instance, view,
                            )
                        if payload in (0, 1):
                            out.append(payload)
                    if out:
                        self.network.send(
                            pid, recipient, tuple(out), len(out), est_tag
                        )
            inboxes = self.network.deliver()
            for pid in active:
                for message in inboxes[pid]:
                    if message.tag != est_tag:
                        continue
                    for value in message.payload:
                        if value in (0, 1):
                            senders_of[pid][value].add(message.sender)
            for pid in active:
                for value in (0, 1):
                    if (
                        len(senders_of[pid][value]) >= self.t + 1
                        and value not in sent_vals[pid]
                        and value not in pending[pid]
                    ):
                        pending[pid].append(value)
            sub_rounds += 1
            if sub_rounds > 2 * self.n + 2:
                raise AssertionError(
                    "BV-broadcast echo cascade failed to reach a fixpoint"
                )
        return {
            pid: {
                value
                for value in (0, 1)
                if len(senders_of[pid][value]) >= 2 * self.t + 1
            }
            for pid in active
        }

    def _aux_round(
        self,
        aux: Dict[int, int],
        active: List[int],
        round_index: int,
        instance: int,
        tag: str,
        view: GlobalView,
    ) -> Dict[int, Set[int]]:
        """AUX phase: one bit per edge; returns the set of values each
        processor received (own AUX included)."""
        aux_tag = "%s.aux" % tag
        adversary = self.adversary
        for pid in active:
            for recipient in active:
                if recipient == pid:
                    continue
                payload: Optional[int] = aux[pid]
                if adversary.controls(pid):
                    payload = adversary.aux_value(
                        pid, recipient, aux[pid], round_index, instance, view
                    )
                if payload in (0, 1):
                    self.network.send(pid, recipient, payload, 1, aux_tag)
        inboxes = self.network.deliver()
        received: Dict[int, Set[int]] = {}
        for pid in active:
            values = {aux[pid]}
            for message in inboxes[pid]:
                if message.tag == aux_tag and message.payload in (0, 1):
                    values.add(message.payload)
            received[pid] = values
        return received

    def _coin(self, instance: int, round_index: int, view: GlobalView) -> int:
        if round_index >= self.round_cap:
            # Derandomization fallback: alternate deterministically so a
            # rigged coin or a hostile dealer cannot stall termination.
            extras = self.stats.extras
            extras["derandomized_rounds"] = (
                extras.get("derandomized_rounds", 0) + 1
            )
            return round_index & 1
        coin = 1 if self.coin.flip(instance, round_index) else 0
        if self.adversary.faulty:
            revealed = self.adversary.coin_reveal(
                instance, round_index, coin, view
            )
            if revealed in (0, 1):
                coin = revealed
        return coin

    # -- reporting -------------------------------------------------------------

    def expected_rounds(self) -> float:
        """Measured mean rounds per decided instance (0.0 before any)."""
        count = self.stats.extras.get("decided_instances", 0)
        if not count:
            return 0.0
        return self.stats.extras.get("rounds_total", 0) / count

    def bits_per_instance(self) -> float:
        """Analytic *expected* bits of one instance under a fair coin:
        the source round plus ~2 rounds of three all-to-all sub-rounds
        (EST, one echo, AUX).  The measured cost is a random variable;
        this estimate only feeds the analytic overlays."""
        all_to_all = self.n * (self.n - 1)
        return float((self.n - 1) + 2 * 3 * all_to_all)
