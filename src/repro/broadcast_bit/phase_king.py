"""Error-free 1-bit broadcast from Phase-King consensus (``t < n/3``).

Construction: the source sends its bit to everybody (one round), then all
processors run the King algorithm (Berman-Garay-Perry style; the version
below follows the standard three-round-per-phase formulation) on what they
received.  Consensus validity and agreement give the broadcast contract:

* honest source -> every honest processor inputs the source's bit, so
  consensus validity delivers exactly that bit;
* faulty source -> consensus agreement still yields a common bit.

The King algorithm runs ``t + 1`` phases with kings ``0, 1, ..., t`` — at
least one king is fault-free — and each phase has three rounds:

1. everyone sends its current bit to everyone;
2. a processor that saw a value ``y`` at least ``n - t`` times proposes
   ``y``; a processor that receives more than ``t`` proposals for ``z``
   adopts ``z`` (at most one such ``z`` can exist), and records whether the
   support was *strong* (``>= n - t`` proposals);
3. the phase king sends its bit; processors without strong support adopt
   the king's bit.

:func:`run_king_consensus` exposes the consensus core on its own — the
bitwise baseline (L independent binary consensus instances) and the
Fitzi-Hirt digest agreement reuse it directly.

Measured cost per broadcast instance is ``(n-1) + (t+1)·(~2n(n-1) + (n-1))``
bits — ``Θ(n²t)``.  The paper assumes the ``Θ(n²)`` bit-optimal broadcasts
of its references [1, 2]; see :mod:`repro.broadcast_bit.ideal` for the
accounted substitution and benchmark E10 for the measured gap.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from repro.broadcast_bit.interface import BroadcastBackend
from repro.network.metrics import BitMeter
from repro.processors.adversary import Adversary, GlobalView


def phase_king_bits(n: int, t: int) -> int:
    """Worst-case bits of one source round + King consensus instance.

    Round 1 and round 2 are all-to-all single-bit exchanges (round 2
    proposals are optional, we bound with everyone proposing); round 3 is
    one king-to-all message.  Plus the initial source round.
    """
    return (n - 1) + king_consensus_bits(n, t)


def king_consensus_bits(n: int, t: int) -> int:
    """Worst-case bits of one King binary-consensus instance."""
    per_phase = 2 * n * (n - 1) + (n - 1)
    return (t + 1) * per_phase


def run_king_consensus(
    n: int,
    t: int,
    inputs: Dict[int, int],
    adversary: Adversary,
    meter: BitMeter,
    view: GlobalView,
    tag: str,
    ignored: FrozenSet[int] = frozenset(),
    instance: int = 0,
) -> Dict[int, int]:
    """The King algorithm on binary inputs; returns pid -> decided bit.

    Fault-free processors are guaranteed agreement, and validity when they
    share an input.  ``ignored`` processors neither send nor are counted.
    Missing inputs default to 0.
    """
    active = [pid for pid in range(n) if pid not in ignored]
    recipients = {pid: [q for q in active if q != pid] for pid in active}
    current: Dict[int, int] = {
        pid: inputs.get(pid, 0) if inputs.get(pid, 0) in (0, 1) else 0
        for pid in active
    }

    for phase in range(t + 1):
        king = phase
        # Round 1: everyone sends its current bit to everyone.
        counts: Dict[int, List[int]] = {pid: [0, 0] for pid in active}
        sent = 0
        for sender in active:
            for recipient in recipients[sender]:
                payload: Optional[int] = current[sender]
                if adversary.controls(sender):
                    payload = adversary.king_value(
                        sender, recipient, phase, current[sender],
                        instance, view,
                    )
                sent += 1
                if payload in (0, 1):
                    counts[recipient][payload] += 1
        for pid in active:
            counts[pid][current[pid]] += 1  # own value, not transmitted
        meter.add("%s.king.r1" % tag, sent, sent)

        # Round 2: propose values seen >= n - t times.
        proposals: Dict[int, Optional[int]] = {}
        for pid in active:
            if counts[pid][0] >= n - t:
                proposals[pid] = 0
            elif counts[pid][1] >= n - t:
                proposals[pid] = 1
            else:
                proposals[pid] = None
        proposal_counts: Dict[int, List[int]] = {
            pid: [0, 0] for pid in active
        }
        sent = 0
        for sender in active:
            for recipient in recipients[sender]:
                payload = proposals[sender]
                if adversary.controls(sender):
                    payload = adversary.king_proposal(
                        sender, recipient, phase, proposals[sender],
                        instance, view,
                    )
                if payload in (0, 1):
                    sent += 1
                    proposal_counts[recipient][payload] += 1
        for pid in active:
            if proposals[pid] in (0, 1):
                proposal_counts[pid][proposals[pid]] += 1
        meter.add("%s.king.r2" % tag, sent, sent)

        strong: Dict[int, bool] = {}
        for pid in active:
            tally = proposal_counts[pid]
            # At most one value can clear t proposals (an honest proposer
            # is needed, and honest processors propose at most one common
            # value); ties broken toward 0 defensively.
            if tally[0] > t or tally[1] > t:
                adopted = 0 if tally[0] >= tally[1] else 1
                current[pid] = adopted
                strong[pid] = tally[adopted] >= n - t
            else:
                strong[pid] = False

        # Round 3: the king sends its bit; weak processors adopt it.
        king_broadcast: Dict[int, Optional[int]] = {}
        sent = 0
        if king in active:
            for recipient in recipients[king]:
                payload = current[king]
                if adversary.controls(king):
                    payload = adversary.king_bit(
                        king, recipient, phase, current[king],
                        instance, view,
                    )
                sent += 1
                king_broadcast[recipient] = payload
        meter.add("%s.king.r3" % tag, sent, sent)
        for pid in active:
            if pid == king:
                continue
            if not strong[pid]:
                received = king_broadcast.get(pid)
                current[pid] = received if received in (0, 1) else 0

    return {pid: current.get(pid, 0) for pid in range(n)}


class PhaseKingBroadcast(BroadcastBackend):
    """Real error-free broadcast; every message individually metered.

    The batched entry points (``broadcast_bits_many`` and the grouped
    diagnosis-stage variant ``broadcast_bits_many_grouped``) inherit the
    base class's per-row dispatch: every instance simulates its full
    King phases, because even an honest source's instance carries
    per-round adversary hooks (``king_value``/``king_proposal``/
    ``king_bit`` fire for every faulty processor, source or not).  That
    rules out the accounted-ideal backend's O(1) honest shortcut
    (``constant_cost_honest`` stays False) but keeps hook order and
    per-round meter tags exactly scalar.
    """

    name = "phase_king"
    error_free = True

    def _broadcast_one(
        self, source: int, bit: int, tag: str, ignored: FrozenSet[int]
    ) -> Dict[int, int]:
        instance = self._next_instance()
        view = self._view()
        adversary = self.adversary
        active = [pid for pid in range(self.n) if pid not in ignored]

        # -- source round: source sends its bit to everyone ------------------
        value: Dict[int, Optional[int]] = {pid: None for pid in range(self.n)}
        value[source] = bit
        sent = 0
        for recipient in active:
            if recipient == source:
                continue
            payload: Optional[int] = bit
            if adversary.controls(source):
                payload = adversary.bsb_source_bit(
                    source, recipient, bit, instance, view
                )
            sent += 1
            value[recipient] = payload
        self._charge("%s.source" % tag, sent, messages=sent)

        inputs = {
            pid: value[pid] if value[pid] in (0, 1) else 0 for pid in active
        }
        before = self.meter.total_bits
        result = run_king_consensus(
            self.n, self.t, inputs, adversary, self.meter, view, tag,
            ignored, instance,
        )
        self.stats.bits_charged += self.meter.total_bits - before
        return result

    def bits_per_instance(self) -> float:
        return float(phase_king_bits(self.n, self.t))
