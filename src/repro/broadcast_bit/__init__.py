"""``Broadcast_Single_Bit`` backends.

Algorithm 1 disseminates all of its control information (M vectors,
Detected flags, diagnosis symbols, Trust vectors) through an error-free
1-bit Byzantine broadcast the paper treats as a black box of cost ``B``
bits per broadcast bit (``B = Θ(n²)`` for the bit-optimal algorithms it
cites).  Five interchangeable backends implement the same contract:

* :class:`~repro.broadcast_bit.ideal.AccountedIdealBroadcast` — behaves as
  a correct broadcast and *charges* a configurable ``B(n)``; reproduces the
  paper's complexity formulas exactly (the substitution documented in
  DESIGN.md §5).
* :class:`~repro.broadcast_bit.phase_king.PhaseKingBroadcast` — a real,
  error-free protocol (source round + ``t+1``-phase King consensus,
  ``t < n/3``), ``B = Θ(n²t)`` measured bits.
* :class:`~repro.broadcast_bit.eig.EIGBroadcast` — Exponential Information
  Gathering (the classic ``OM(t)`` of Lamport, Shostak and Pease), used for
  cross-validation at small ``n``.
* :class:`~repro.broadcast_bit.dolev_strong.DolevStrongBroadcast` — an
  authenticated, probabilistically-correct broadcast built on simulated
  pseudo-signatures, enabling the paper's §4 variant for ``t >= n/3``.
* :class:`~repro.broadcast_bit.mostefaoui.MostefaouiBroadcast` — a
  randomized common-coin broadcast in the Mostefaoui-Raynal/Ben-Or
  style (EST/AUX phases, ``bin_values`` thresholds); deterministic
  safety, probabilistic round count metered per round.
"""

from repro.broadcast_bit.dolev_strong import (
    BernoulliForgingAdversary,
    DolevStrongBroadcast,
)
from repro.broadcast_bit.eig import EIGBroadcast
from repro.broadcast_bit.ideal import AccountedIdealBroadcast
from repro.broadcast_bit.interface import BroadcastBackend, BroadcastStats
from repro.broadcast_bit.mostefaoui import (
    CommonCoin,
    MostefaouiBroadcast,
    RiggedCoin,
    SeededCoin,
)
from repro.broadcast_bit.phase_king import PhaseKingBroadcast, phase_king_bits

__all__ = [
    "BroadcastBackend",
    "BroadcastStats",
    "AccountedIdealBroadcast",
    "PhaseKingBroadcast",
    "phase_king_bits",
    "EIGBroadcast",
    "DolevStrongBroadcast",
    "BernoulliForgingAdversary",
    "MostefaouiBroadcast",
    "CommonCoin",
    "SeededCoin",
    "RiggedCoin",
]
