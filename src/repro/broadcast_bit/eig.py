"""Exponential Information Gathering (``OM(t)``) 1-bit broadcast.

The classic algorithm of Lamport, Shostak and Pease: ``t + 1`` rounds of
relaying, then a bottom-up recursive-majority resolution of the EIG tree.
Message complexity is exponential in ``t``, so this backend exists for
cross-validation of the cheaper backends at small ``n`` (the three
backends must produce identical decisions under identical adversaries),
and as the historical baseline the paper's references build upon.

Tree conventions: a node is the tuple of pids its value travelled through,
starting with the source.  A processor never appears twice in a path, and
a processor does not relay to the processors already in the path.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.broadcast_bit.interface import BroadcastBackend

Path = Tuple[int, ...]


def eig_message_count(n: int, t: int) -> int:
    """Total messages of one EIG instance (for sizing expectations).

    Round 0: ``n - 1`` source messages.  Round ``r`` relays every
    length-``r`` node through every processor not yet on the path, each
    relay reaching the other ``n - 1`` processors.
    """
    total = n - 1
    frontier = 1  # number of length-1 paths: just (source,)
    for r in range(1, t + 1):
        relays = frontier * (n - r)  # new length-(r+1) nodes
        total += relays * (n - 1)
        frontier = relays
    return total


class EIGBroadcast(BroadcastBackend):
    """``OM(t)`` broadcast; exact but exponentially expensive.

    Like Phase-King, this backend simulates real relay rounds whose
    faulty relays get per-edge ``eig_relay`` hooks regardless of who the
    source is, so the batched entry points (including the grouped
    diagnosis-stage call) inherit the base class's per-row dispatch and
    ``constant_cost_honest`` stays False: there is no honest-source
    accounting shortcut that would preserve hook order.
    """

    name = "eig"
    error_free = True

    def _broadcast_one(
        self, source: int, bit: int, tag: str, ignored: FrozenSet[int]
    ) -> Dict[int, int]:
        instance = self._next_instance()
        view = self._view()
        adversary = self.adversary
        active = [pid for pid in range(self.n) if pid not in ignored]
        active_set = set(active)

        # trees[pid][path] = value pid stores for that tree node.
        trees: Dict[int, Dict[Path, int]] = {pid: {} for pid in active}

        # Round 0: source sends its bit to everyone else.
        sent = 0
        for recipient in active:
            if recipient == source:
                continue
            payload: Optional[int] = bit
            if adversary.controls(source):
                payload = adversary.bsb_source_bit(
                    source, recipient, bit, instance, view
                )
            sent += 1
            trees[recipient][(source,)] = payload if payload in (0, 1) else 0
        if source in active_set:
            trees[source][(source,)] = bit
        self._charge("%s.eig.r0" % tag, sent, messages=sent)

        # Rounds 1..t: relay every node of the previous layer.
        frontier: List[Path] = [(source,)]
        for round_index in range(1, self.t + 1):
            next_frontier: List[Path] = []
            sent = 0
            deliveries: List[Tuple[int, Path, Optional[int]]] = []
            for path in frontier:
                for relay in active:
                    if relay in path:
                        continue
                    new_path = path + (relay,)
                    held = trees[relay].get(path, 0)
                    # Relays send to every processor (even those named in
                    # the path): all fault-free processors must build the
                    # same tree for the global majority resolution to
                    # satisfy the honest-node lemma.
                    for recipient in active:
                        if recipient == relay:
                            continue
                        payload = held
                        if adversary.controls(relay):
                            payload = adversary.eig_relay(
                                relay, recipient, new_path, held, instance,
                                view,
                            )
                        sent += 1
                        deliveries.append((recipient, new_path, payload))
                    trees[relay][new_path] = held
                    next_frontier.append(new_path)
            for recipient, new_path, payload in deliveries:
                trees[recipient][new_path] = (
                    payload if payload in (0, 1) else 0
                )
            self._charge("%s.eig.r%d" % (tag, round_index), sent, messages=sent)
            frontier = next_frontier

        # Resolve each tree bottom-up with recursive majority.
        def resolve(tree: Dict[Path, int], path: Path) -> int:
            children = [
                pid
                for pid in active
                if pid not in path and len(path) <= self.t
            ]
            if len(path) == self.t + 1 or not children:
                return tree.get(path, 0)
            votes = [resolve(tree, path + (child,)) for child in children]
            ones = sum(votes)
            return 1 if 2 * ones > len(votes) else 0

        result: Dict[int, int] = {}
        for pid in range(self.n):
            if pid not in active_set:
                result[pid] = 0
            elif pid == source:
                result[pid] = bit
            else:
                result[pid] = resolve(trees[pid], (source,))
        return result

    def bits_per_instance(self) -> float:
        return float(eig_message_count(self.n, self.t))
