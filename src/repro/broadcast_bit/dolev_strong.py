"""Authenticated 1-bit broadcast (Dolev-Strong) over simulated
pseudo-signatures — the §4 substitution for tolerating ``t >= n/3``.

The paper notes its consensus algorithm needs ``t < n/3`` *only* for the
error-free ``Broadcast_Single_Bit``; swapping in any probabilistically
correct 1-bit broadcast (it cites the authenticated algorithms of
Pfitzmann-Waidner and Dolev-Strong) yields a consensus tolerating whatever
that broadcast tolerates, erring only when the broadcast errs.

Substitution (DESIGN.md §5): real pseudo-signature schemes fail with
probability ~``2^-kappa``.  We simulate signatures as unforgeable tokens
``(signer, message)`` plus an adversary hook deciding whether each forgery
*attempt* succeeds; :class:`BernoulliForgingAdversary` makes attempts
succeed independently with probability ``2^-kappa``.  A successful forgery
lets the adversary plant a second value in honest extraction sets in the
last round, producing exactly the disagreement mode of the real scheme.

Protocol (classic Dolev-Strong, tolerates any ``t < n``): in round 0 the
source signs and sends its bit; in rounds ``1..t`` a processor that newly
*extracted* a value (a chain of ``r`` distinct valid signatures beginning
with the source) appends its signature and relays.  After round ``t`` a
processor whose extraction set is a single value decides it; otherwise it
decides the default 0.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.broadcast_bit.interface import BroadcastBackend
from repro.processors.adversary import Adversary
from repro.utils.rng import derive_rng

#: A simulated signature chain: the bit plus the ordered signer list.
Chain = Tuple[int, Tuple[int, ...]]


class BernoulliForgingAdversary(Adversary):
    """Adversary whose forgery attempts succeed with probability 2^-kappa.

    Faulty processors also try the classic source-equivocation attack
    (signing both bits when the source is faulty), which Dolev-Strong
    neutralises without error; only successful forgeries cause errors.
    """

    def __init__(self, faulty: Sequence[int], kappa: int = 16, seed: int = 0):
        super().__init__(faulty)
        self.kappa = kappa
        # Derived through the shared seeded-RNG utility, so one master
        # seed reproduces the forgery lottery and the mostefaoui common
        # coin together (see repro.utils.rng).
        self.rng = derive_rng(seed, "dolev_strong", "forgery")
        self.forgeries_attempted = 0
        self.forgeries_succeeded = 0

    def forge_signature(self, forger, victim, message, view) -> bool:
        self.forgeries_attempted += 1
        success = self.rng.random() < 2.0 ** (-self.kappa)
        if success:
            self.forgeries_succeeded += 1
        return success


class DolevStrongBroadcast(BroadcastBackend):
    """Probabilistically correct broadcast for any ``t < n``.

    ``error_free = False`` keeps the consensus engines on their scalar
    reference path (honest views can genuinely diverge here, so no
    shared reference view exists to vectorize over).  The batched entry
    points — including the grouped diagnosis-stage call — therefore
    inherit the base class's per-row dispatch, which preserves the
    per-instance forgery-RNG stream (:class:`BernoulliForgingAdversary`)
    exactly as the scalar loop drives it; ``constant_cost_honest`` stays
    False because even honest-source instances run the full signed-relay
    protocol.
    """

    name = "dolev_strong"
    error_free = False

    @staticmethod
    def max_faults(n: int) -> int:
        return n - 1

    def __init__(
        self,
        n: int,
        t: int,
        meter=None,
        adversary=None,
        view_provider=None,
        kappa: int = 16,
    ):
        super().__init__(n, t, meter, adversary, view_provider)
        self.kappa = kappa

    def _chain_bits(self, chain: Chain) -> int:
        """Accounted size: 1 bit of value + kappa bits per signature."""
        return 1 + self.kappa * len(chain[1])

    def _broadcast_one(
        self, source: int, bit: int, tag: str, ignored: FrozenSet[int]
    ) -> Dict[int, int]:
        instance = self._next_instance()
        view = self._view()
        adversary = self.adversary
        active = [pid for pid in range(self.n) if pid not in ignored]
        active_set = set(active)
        faulty = adversary.faulty

        # extracted[pid] = set of bit values pid has accepted so far.
        extracted: Dict[int, Set[int]] = {pid: set() for pid in active}
        # chains pid can relay next round (newly extracted values).
        outbox: Dict[int, List[Chain]] = {pid: [] for pid in active}

        # Round 0: the source signs and sends its bit (a faulty source
        # may equivocate per recipient via the bsb_source_bit hook).
        sent_bits = 0
        for recipient in active:
            if recipient == source:
                continue
            if source in faulty:
                payload_bit = adversary.bsb_source_bit(
                    source, recipient, bit, instance, view
                )
                if payload_bit not in (0, 1):
                    continue
            else:
                payload_bit = bit
            chain: Chain = (payload_bit, (source,))
            sent_bits += self._chain_bits(chain)
            extracted[recipient].add(payload_bit)
            outbox[recipient].append((payload_bit, (source, recipient)))
        if source in active_set:
            extracted[source].add(bit)
        self._charge("%s.ds.r0" % tag, sent_bits, messages=len(active) - 1)

        # A successful forgery lets faulty processors fabricate a full
        # valid-looking chain for the opposite bit in the final round.
        forged_chain_planted = False
        if faulty & active_set and source in faulty:
            forger = min(faulty & active_set)
            if adversary.forge_signature(
                forger, source, ("ds", instance), view
            ):
                forged_chain_planted = True

        # Rounds 1..t: relay newly extracted values with one more signature.
        for round_index in range(1, self.t + 1):
            deliveries: List[Tuple[int, Chain]] = []
            sent_bits = 0
            message_count = 0
            for sender in active:
                for chain in outbox[sender]:
                    value, signers = chain
                    if len(signers) != round_index + 1:
                        continue
                    for recipient in active:
                        if recipient in signers:
                            continue
                        payload: Optional[Chain] = chain
                        if sender in faulty:
                            # A faulty relay can drop the message; it cannot
                            # alter the signed value without forging.
                            relayed = adversary.eig_relay(
                                sender, recipient, signers, value, instance,
                                view,
                            )
                            if relayed is None:
                                continue
                        sent_bits += self._chain_bits(chain)
                        message_count += 1
                        deliveries.append((recipient, payload))
            for pid in active:
                outbox[pid] = []
            for recipient, chain in deliveries:
                value, signers = chain
                # Signature verification: the chain must start at the
                # source, have distinct signers, and length round+1.
                if signers[0] != source or len(set(signers)) != len(signers):
                    continue
                if value not in extracted[recipient]:
                    extracted[recipient].add(value)
                    outbox[recipient].append(
                        (value, signers + (recipient,))
                    )
            # The planted forgery lands in the final round at exactly one
            # honest processor, too late to be relayed onward.
            if forged_chain_planted and round_index == self.t:
                victims = sorted(active_set - faulty)
                if victims and len(extracted[victims[0]]) == 1:
                    held = next(iter(extracted[victims[0]]))
                    extracted[victims[0]].add(held ^ 1)
            self._charge(
                "%s.ds.r%d" % (tag, round_index), sent_bits,
                messages=message_count,
            )

        result: Dict[int, int] = {}
        for pid in range(self.n):
            if pid not in active_set:
                result[pid] = 0
                continue
            values = extracted[pid]
            if len(values) == 1:
                result[pid] = next(iter(values))
            else:
                result[pid] = 0
        return result

    def bits_per_instance(self) -> float:
        # Dominated by round-1 relays: ~n^2 chains of ~kappa bits each.
        return float(self.n * self.n * (1 + 2 * self.kappa))
