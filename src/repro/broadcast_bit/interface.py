"""Common contract for ``Broadcast_Single_Bit`` implementations.

A backend broadcasts one bit from a designated source to all processors
and returns, for *every* processor, the bit that processor ends up with.
An error-free backend guarantees:

* **Agreement** — all fault-free processors return the same bit;
* **Validity** — if the source is fault-free, that bit is the source's.

The probabilistic backend (:mod:`repro.broadcast_bit.dolev_strong`) may
violate agreement with small probability; engines built for ``t < n/3``
assert agreement and engines for the §4 variant record violations as the
algorithm's (substrate-inherited) error events.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.network.metrics import BitMeter
from repro.processors.adversary import Adversary, GlobalView


@dataclass
class BroadcastStats:
    """Counters a backend keeps across its lifetime."""

    instances: int = 0
    bits_charged: int = 0
    disagreements: int = 0
    extras: Dict[str, int] = field(default_factory=dict)


class BroadcastBackend(abc.ABC):
    """Base class wiring up metering, adversary access and instance ids."""

    #: short name used in configs and reports
    name = "abstract"
    #: whether agreement is guaranteed in all executions
    error_free = True
    #: largest t the backend tolerates, as a function of n
    @staticmethod
    def max_faults(n: int) -> int:
        return (n - 1) // 3

    def __init__(
        self,
        n: int,
        t: int,
        meter: Optional[BitMeter] = None,
        adversary: Optional[Adversary] = None,
        view_provider: Optional[Callable[[], GlobalView]] = None,
    ):
        if n < 1:
            raise ValueError("n must be positive, got %d" % n)
        if t < 0:
            raise ValueError("t must be non-negative, got %d" % t)
        self.n = n
        self.t = t
        self.meter = meter if meter is not None else BitMeter()
        self.adversary = adversary if adversary is not None else Adversary()
        self._view_provider = view_provider
        self.stats = BroadcastStats()

    def _view(self) -> GlobalView:
        if self._view_provider is not None:
            return self._view_provider()
        return GlobalView(n=self.n, t=self.t, faulty=set(self.adversary.faulty))

    def _next_instance(self) -> int:
        self.stats.instances += 1
        return self.stats.instances - 1

    def _charge(self, tag: str, bits: int, messages: int = 1) -> None:
        self.meter.add(tag, bits, messages)
        self.stats.bits_charged += bits

    # -- public API -----------------------------------------------------------

    def broadcast_bit(
        self,
        source: int,
        bit: int,
        tag: str,
        ignored: FrozenSet[int] = frozenset(),
    ) -> Dict[int, int]:
        """Broadcast one bit; returns pid -> received bit for every pid.

        ``ignored`` holds processors the fault-free have isolated via the
        diagnosis graph: they neither send nor are listened to.  An ignored
        source yields the default bit 0 everywhere without communication.
        """
        if bit not in (0, 1):
            raise ValueError("bit must be 0 or 1, got %r" % (bit,))
        if not 0 <= source < self.n:
            raise ValueError("source %d out of range" % source)
        if source in ignored:
            return {pid: 0 for pid in range(self.n)}
        result = self._broadcast_one(source, bit, tag, ignored)
        honest = [
            value
            for pid, value in result.items()
            if pid not in self.adversary.faulty
        ]
        if honest and any(value != honest[0] for value in honest):
            self.stats.disagreements += 1
            if self.error_free:
                raise AssertionError(
                    "error-free backend %s produced disagreement %r"
                    % (self.name, result)
                )
        return result

    def broadcast_bits(
        self,
        source: int,
        bits: Sequence[int],
        tag: str,
        ignored: FrozenSet[int] = frozenset(),
    ) -> Dict[int, List[int]]:
        """Broadcast a bit string: one backend instance per bit (as the
        paper specifies), results collected per pid."""
        results: Dict[int, List[int]] = {pid: [] for pid in range(self.n)}
        for bit in bits:
            outcome = self.broadcast_bit(source, bit, tag, ignored)
            for pid in range(self.n):
                results[pid].append(outcome[pid])
        return results

    def broadcast_bits_many(
        self,
        rows: Sequence[Tuple[int, Sequence[int]]],
        tag: str,
        ignored: FrozenSet[int] = frozenset(),
    ) -> List[Dict[int, List[int]]]:
        """Broadcast several bit strings under one tag: ``rows`` holds
        ``(source, bits)`` pairs; the result aligns with ``rows``.

        Semantically identical to one :meth:`broadcast_bits` call per
        row (and this default implementation is exactly that); backends
        with a cheaper bulk path override it with byte-identical
        accounting.  This is the unit of the engines' vectorized
        fast paths: one call per (stage, generation) instead of one per
        (stage, generation, source).
        """
        return [
            self.broadcast_bits(source, bits, tag, ignored)
            for source, bits in rows
        ]

    @abc.abstractmethod
    def _broadcast_one(
        self, source: int, bit: int, tag: str, ignored: FrozenSet[int]
    ) -> Dict[int, int]:
        """Run one broadcast instance and return pid -> decided bit."""

    @abc.abstractmethod
    def bits_per_instance(self) -> float:
        """Analytic ``B``: bits charged by one instance (for formulas)."""
