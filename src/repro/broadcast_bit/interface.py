"""Common contract for ``Broadcast_Single_Bit`` implementations.

A backend broadcasts one bit from a designated source to all processors
and returns, for *every* processor, the bit that processor ends up with.
An error-free backend guarantees:

* **Agreement** — all fault-free processors return the same bit;
* **Validity** — if the source is fault-free, that bit is the source's.

The probabilistic backend (:mod:`repro.broadcast_bit.dolev_strong`) may
violate agreement with small probability; engines built for ``t < n/3``
assert agreement and engines for the §4 variant record violations as the
algorithm's (substrate-inherited) error events.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.network.metrics import BitMeter
from repro.processors.adversary import Adversary, GlobalView
from repro.utils.bits import PackedBits

#: A deferred row of a grouped broadcast: ``(source, plan)`` where
#: ``plan()`` returns the source's bit string.  The plan is invoked
#: immediately before the source's broadcast instances dispatch, so
#: per-source planning hooks (e.g. an adversary choosing the bits) fire
#: interleaved with the backend's own per-instance hooks, in exactly the
#: order a per-source loop of :meth:`BroadcastBackend.broadcast_bits`
#: calls would produce.
PlannedRow = Tuple[int, Callable[[], Sequence[int]]]


@dataclass
class BroadcastStats:
    """Counters a backend keeps across its lifetime."""

    instances: int = 0
    bits_charged: int = 0
    disagreements: int = 0
    extras: Dict[str, int] = field(default_factory=dict)


class BroadcastBackend(abc.ABC):
    """Base class wiring up metering, adversary access and instance ids.

    Three batched entry points layer on top of the per-instance
    :meth:`broadcast_bit` primitive, each with the same contract — the
    observable execution (outcomes, meter ``Counter`` state, instance
    ids, adversary-hook order and arguments) is identical to the scalar
    loop it replaces:

    * :meth:`broadcast_bits` — one source, a bit string, one backend
      instance per bit;
    * :meth:`broadcast_bits_many` — several pre-planned ``(source,
      bits)`` rows under one tag (the matching/checking stages' unit);
    * :meth:`broadcast_bits_many_grouped` — several ``(source, plan)``
      rows whose bits are computed lazily per row (the diagnosis
      stage's unit, where per-source adversary hooks must interleave
      with dispatch).
    """

    #: short name used in configs and reports
    name = "abstract"
    #: whether agreement is guaranteed in all executions
    error_free = True
    #: True when an honest, live source's broadcast has no per-instance
    #: hooks and a cost chargeable in O(1) via
    #: :meth:`charge_honest_instances` (the accounted-ideal backend).
    #: Protocol-simulating backends (Phase-King, EIG, Dolev-Strong) run
    #: real rounds whose faulty *non-source* processors still get hooks,
    #: so their cost cannot be replayed without executing the protocol.
    constant_cost_honest = False
    #: largest t the backend tolerates, as a function of n
    @staticmethod
    def max_faults(n: int) -> int:
        return (n - 1) // 3

    def __init__(
        self,
        n: int,
        t: int,
        meter: Optional[BitMeter] = None,
        adversary: Optional[Adversary] = None,
        view_provider: Optional[Callable[[], GlobalView]] = None,
    ):
        if n < 1:
            raise ValueError("n must be positive, got %d" % n)
        if t < 0:
            raise ValueError("t must be non-negative, got %d" % t)
        self.n = n
        self.t = t
        self.meter = meter if meter is not None else BitMeter()
        self.adversary = adversary if adversary is not None else Adversary()
        self._view_provider = view_provider
        self.stats = BroadcastStats()

    def _view(self) -> GlobalView:
        if self._view_provider is not None:
            return self._view_provider()
        return GlobalView(n=self.n, t=self.t, faulty=set(self.adversary.faulty))

    def _next_instance(self) -> int:
        self.stats.instances += 1
        return self.stats.instances - 1

    def _charge(self, tag: str, bits: int, messages: int = 1) -> None:
        self.meter.add(tag, bits, messages)
        self.stats.bits_charged += bits

    # -- public API -----------------------------------------------------------

    def broadcast_bit(
        self,
        source: int,
        bit: int,
        tag: str,
        ignored: FrozenSet[int] = frozenset(),
    ) -> Dict[int, int]:
        """Broadcast one bit; returns pid -> received bit for every pid.

        ``ignored`` holds processors the fault-free have isolated via the
        diagnosis graph: they neither send nor are listened to.  An ignored
        source yields the default bit 0 everywhere without communication.
        """
        if bit not in (0, 1):
            raise ValueError("bit must be 0 or 1, got %r" % (bit,))
        if not 0 <= source < self.n:
            raise ValueError("source %d out of range" % source)
        if source in ignored:
            return {pid: 0 for pid in range(self.n)}
        result = self._broadcast_one(source, bit, tag, ignored)
        honest = [
            value
            for pid, value in result.items()
            if pid not in self.adversary.faulty
        ]
        if honest and any(value != honest[0] for value in honest):
            self.stats.disagreements += 1
            if self.error_free:
                raise AssertionError(
                    "error-free backend %s produced disagreement %r"
                    % (self.name, result)
                )
        return result

    def broadcast_bits(
        self,
        source: int,
        bits: Sequence[int],
        tag: str,
        ignored: FrozenSet[int] = frozenset(),
    ) -> Dict[int, List[int]]:
        """Broadcast a bit string: one backend instance per bit (as the
        paper specifies), results collected per pid.

        Args:
            source: broadcasting processor id (``0 <= source < n``).
            bits: the bit string; each bit costs one backend instance.
            tag: hierarchical meter tag all instances charge under.
            ignored: processors the fault-free have isolated; an ignored
                source yields all-zero results without communication
                (and without metering).

        Returns:
            ``pid -> list of received bits`` for every pid, aligned with
            ``bits``.  Under an error-free backend every fault-free
            pid's list is equal.

        Packed rows: when ``bits`` is a :class:`~repro.utils.bits.\
PackedBits` row, the return value maps each pid to a ``PackedBits``
        row instead of a list ("packed in, packed out").  This scalar
        loop — unpack, one instance per bit, repack — is the contractual
        reference every backend's packed path must match bit-for-bit;
        all four backends therefore support packed rows, and only the
        accounted-ideal backend overrides it with bulk packed
        accounting.
        """
        packed = isinstance(bits, PackedBits)
        bit_list = bits.tolist() if packed else bits
        results: Dict[int, List[int]] = {pid: [] for pid in range(self.n)}
        for bit in bit_list:
            outcome = self.broadcast_bit(source, bit, tag, ignored)
            for pid in range(self.n):
                results[pid].append(outcome[pid])
        if packed:
            return {
                pid: PackedBits.from_bits(values)
                for pid, values in results.items()
            }
        return results

    def broadcast_bits_many(
        self,
        rows: Sequence[Tuple[int, Sequence[int]]],
        tag: str,
        ignored: FrozenSet[int] = frozenset(),
    ) -> List[Dict[int, List[int]]]:
        """Broadcast several bit strings under one tag: ``rows`` holds
        ``(source, bits)`` pairs; the result aligns with ``rows``.

        Semantically identical to one :meth:`broadcast_bits` call per
        row (and this default implementation is exactly that); backends
        with a cheaper bulk path override it with byte-identical
        accounting.  This is the unit of the engines' vectorized
        matching/checking stages — one call per (stage, generation)
        instead of one per (stage, generation, source) — and is only
        appropriate when every row's bits are known *before* the first
        row dispatches (the scalar reference plans all rows up front
        too, so hook interleaving is preserved).  When a row's bits are
        produced by a hook that must fire in dispatch order, use
        :meth:`broadcast_bits_many_grouped` instead.

        >>> from repro.broadcast_bit.ideal import AccountedIdealBroadcast
        >>> backend = AccountedIdealBroadcast(4, 1)
        >>> outcomes = backend.broadcast_bits_many(
        ...     [(0, [1, 0]), (1, [1, 1])], "demo")
        >>> [outcome[3] for outcome in outcomes]
        [[1, 0], [1, 1]]
        """
        return [
            self.broadcast_bits(source, bits, tag, ignored)
            for source, bits in rows
        ]

    def broadcast_bits_many_grouped(
        self,
        rows: Sequence[PlannedRow],
        tag: str,
        ignored: FrozenSet[int] = frozenset(),
    ) -> List[Dict[int, List[int]]]:
        """Broadcast several *lazily planned* bit strings under one tag.

        ``rows`` holds ``(source, plan)`` pairs; each ``plan()`` is
        invoked immediately before its source's instances dispatch and
        returns that source's bits.  This is the diagnosis stage's unit:
        the scalar reference loop fires each source's planning hook
        (``diagnosis_symbol``, ``trust_vector``) and then immediately
        runs that source's broadcast instances, so a stateful adversary
        sharing one RNG across planning and backend hooks observes a
        strict plan/dispatch interleaving per source.  Pre-planning all
        rows (:meth:`broadcast_bits_many`) would reorder those hook
        streams; this entry point preserves them exactly.

        This default implementation *is* the scalar loop — plan row,
        dispatch row — so every backend inherits correct interleaving;
        backends whose honest dispatch has no hooks
        (:attr:`constant_cost_honest`) override it to dispatch the whole
        group as one bulk-accounted call with byte-identical meter
        ``Counter`` state, instance ids and hook order.

        >>> from repro.broadcast_bit.ideal import AccountedIdealBroadcast
        >>> backend = AccountedIdealBroadcast(4, 1)
        >>> rows = [(0, lambda: [1, 0]), (1, lambda: [0, 1])]
        >>> outcomes = backend.broadcast_bits_many_grouped(rows, "demo")
        >>> [outcome[2] for outcome in outcomes]
        [[1, 0], [0, 1]]

        Returns one ``pid -> bits`` dict per row, aligned with ``rows``.
        A plan returning a :class:`~repro.utils.bits.PackedBits` row
        yields packed outcomes (see :meth:`broadcast_bits`).
        """
        results = []
        for source, plan in rows:
            bits = plan()
            if not isinstance(bits, PackedBits):
                bits = list(bits)
            results.append(self.broadcast_bits(source, bits, tag, ignored))
        return results

    def charge_honest_instances(self, tag: str, count: int) -> None:
        """Account ``count`` honest-source instances under ``tag`` in O(1).

        Only meaningful on backends with :attr:`constant_cost_honest`;
        the cross-generation fast path uses it to replay failure-free
        generations without running the broadcast protocol.  The
        default raises, so callers must check the flag first.
        """
        raise NotImplementedError(
            "backend %s has no constant-cost honest accounting" % self.name
        )

    @abc.abstractmethod
    def _broadcast_one(
        self, source: int, bit: int, tag: str, ignored: FrozenSet[int]
    ) -> Dict[int, int]:
        """Run one broadcast instance and return pid -> decided bit."""

    @abc.abstractmethod
    def bits_per_instance(self) -> float:
        """Analytic ``B``: bits charged by one instance (for formulas)."""
