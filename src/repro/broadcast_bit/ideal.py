"""Accounted-ideal ``Broadcast_Single_Bit``.

The paper's analysis treats the 1-bit broadcast as a black box of cost
``B`` bits and cites bit-optimal error-free algorithms with ``B = Θ(n²)``
(Berman-Garay-Perry; Coan-Welch).  This backend models exactly that black
box: the *outcome* obeys the broadcast contract (agreement always;
validity for an honest source; a faulty source picks any single bit), and
the *cost* charged to the meter is a configurable ``B(n)``, default
``2·n²`` bits, which makes measured totals line up with Eq. (1)-(3).

Using this backend is the substitution documented in DESIGN.md §5; the
Phase-King backend provides the end-to-end error-free execution, and
benchmark E10 quantifies the gap between the two.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Optional

from repro.broadcast_bit.interface import BroadcastBackend
from repro.utils.bits import PackedBits


def default_b(n: int) -> int:
    """The default modelled cost of one broadcast instance: ``2 n²`` bits."""
    return 2 * n * n


class AccountedIdealBroadcast(BroadcastBackend):
    """Correct-by-construction broadcast with modelled ``Θ(n²)`` cost.

    Because an honest source's outcome is simply its input and no hooks
    fire for it, every batched entry point here collapses honest work to
    pure accounting (:attr:`constant_cost_honest`): bulk instance bumps
    and one meter entry per call, with ``Counter`` state byte-identical
    to the scalar per-instance loop.  Controlled sources always replay
    the exact scalar per-instance sequence — same instance ids, same
    ``ideal_broadcast_bit`` hook order and arguments — at their position
    in the batch, so stateful seeded adversaries cannot tell the paths
    apart.
    """

    name = "ideal"
    error_free = True
    constant_cost_honest = True

    def __init__(
        self,
        n: int,
        t: int,
        meter=None,
        adversary=None,
        view_provider=None,
        b_function: Optional[Callable[[int], int]] = None,
    ):
        super().__init__(n, t, meter, adversary, view_provider)
        self._b_function = b_function if b_function is not None else default_b
        self._b = int(self._b_function(n))

    def _broadcast_one(
        self, source: int, bit: int, tag: str, ignored: FrozenSet[int]
    ) -> Dict[int, int]:
        instance = self._next_instance()
        if self.adversary.controls(source):
            outcome = self.adversary.ideal_broadcast_bit(
                source, bit, instance, self._view()
            )
            outcome = 1 if outcome else 0
        else:
            outcome = bit
        # One instance costs B(n) bits across ~n(n-1) messages; the message
        # count is a modelling convention and does not affect bit totals.
        self._charge(tag, self._b, messages=self.n * (self.n - 1))
        return {pid: outcome for pid in range(self.n)}

    def broadcast_bits(self, source, bits, tag, ignored=frozenset()):
        """Batched fast path: semantics identical to the base class
        (one instance per bit), with one meter entry per call.

        The returned per-pid lists are one shared row (agreement means
        every processor receives the same bits); callers must treat them
        as read-only, the same contract as :meth:`broadcast_bits_many`.

        A :class:`~repro.utils.bits.PackedBits` row skips the per-bit
        validation (packed rows are 0/1 by construction) and, for an
        honest source, is returned *as-is* — the same packed object
        shared by every pid, the bulk packed accounting the wire format
        exists for.  Controlled sources unpack, replay the scalar hook
        sequence and repack, so adversaries observe per-bit semantics
        unchanged.
        """
        packed = isinstance(bits, PackedBits)
        if source in ignored:
            if packed:
                return dict.fromkeys(range(self.n), PackedBits.zeros(len(bits)))
            return dict.fromkeys(range(self.n), [0] * len(bits))
        if not packed:
            for bit in bits:
                if bit not in (0, 1):
                    raise ValueError("bit must be 0 or 1, got %r" % (bit,))
        if self.adversary.controls(source):
            outcomes = []
            view = self._view()  # one snapshot for the call's instances
            for bit in bits.tolist() if packed else bits:
                instance = self._next_instance()
                value = self.adversary.ideal_broadcast_bit(
                    source, bit, instance, view
                )
                outcomes.append(1 if value else 0)
            if packed:
                outcomes = PackedBits.from_bits(outcomes)
        else:
            # Honest source: the outcome is the input; one bulk instance
            # bump replaces the per-bit counter walk.
            self.stats.instances += len(bits)
            outcomes = bits if packed else list(bits)
        self.stats.bits_charged += self._b * len(bits)
        self.meter.add(
            tag,
            self._b * len(bits),
            messages=self.n * (self.n - 1) * len(bits),
        )
        return dict.fromkeys(range(self.n), outcomes)

    def charge_honest_instances(self, tag: str, count: int) -> None:
        """O(1) bulk accounting for ``count`` honest-source instances.

        Exactly the bookkeeping ``count`` scalar honest
        :meth:`broadcast_bit` calls under ``tag`` would perform — one
        instance bump, ``B(n)`` bits and ``n(n-1)`` messages each — as
        single batched increments.  The cross-generation fast path calls
        this to replay failure-free generations without dispatching any
        broadcast at all.
        """
        if count < 0:
            raise ValueError("count must be non-negative, got %d" % count)
        self.stats.instances += count
        self.stats.bits_charged += self._b * count
        self.meter.add(
            tag, self._b * count, messages=self.n * (self.n - 1) * count
        )

    def broadcast_bits_many_grouped(self, rows, tag, ignored=frozenset()):
        """Grouped fast path: plan each row in order (per-source planning
        hooks fire in the scalar plan/dispatch interleaving), collapse
        honest rows to bulk instance bumps, replay controlled rows'
        per-instance hook sequence at their exact position, and write
        one summed meter entry for the whole group — byte-identical
        ``Counter`` state to per-row :meth:`broadcast_bits` calls.

        The returned per-pid lists of one row are shared (not copied per
        pid); callers must treat them as read-only.
        """
        outcomes: list = []
        total = 0
        charged_rows = 0
        for source, plan in rows:
            bits = plan()
            packed = isinstance(bits, PackedBits)
            if not packed:
                bits = list(bits)
            if source in ignored:
                zero = (
                    PackedBits.zeros(len(bits)) if packed
                    else [0] * len(bits)
                )
                outcomes.append(dict.fromkeys(range(self.n), zero))
                continue
            if not 0 <= source < self.n:
                raise ValueError("source %d out of range" % source)
            if not packed:
                for bit in bits:
                    if bit not in (0, 1):
                        raise ValueError(
                            "bit must be 0 or 1, got %r" % (bit,)
                        )
            if self.adversary.controls(source):
                # Scalar per-instance replay: one view snapshot for the
                # row, then one hook per bit with sequential instance ids.
                view = self._view()
                row = []
                for bit in bits.tolist() if packed else bits:
                    instance = self._next_instance()
                    value = self.adversary.ideal_broadcast_bit(
                        source, bit, instance, view
                    )
                    row.append(1 if value else 0)
                if packed:
                    row = PackedBits.from_bits(row)
            else:
                self.stats.instances += len(bits)
                row = bits
            total += len(bits)
            charged_rows += 1
            outcomes.append(dict.fromkeys(range(self.n), row))
        if charged_rows:
            self.stats.bits_charged += self._b * total
            self.meter.add(
                tag,
                self._b * total,
                messages=self.n * (self.n - 1) * total,
            )
        return outcomes

    def broadcast_rows_flat(self, rows, tag, ignored=frozenset()):
        """Compact dispatch for engine-normalized rows: returns one flat
        bit list per row instead of per-pid dicts (agreement makes every
        fault-free view that shared list).

        The observable execution is byte-identical to
        :meth:`broadcast_bits_many` over the same rows — same instance
        ids and bumps in row order, same ``ideal_broadcast_bit`` hook
        order and arguments (one view snapshot per controlled row), same
        meter ``Counter`` sums and ``stats`` totals, ignored sources
        yield zero rows without charges or hooks.  Callers must pass
        bits already normalized to 0/1 (the engines always do), which is
        what lets this path skip the per-bit validation; rows come back
        shared and read-only.  This is the cohort fast path's unit: the
        per-pid dict fan-out of the generic entry points is pure
        allocation when the caller only ever reads the reference view.
        """
        outcomes: list = []
        total = 0
        for source, bits in rows:
            if source in ignored:
                outcomes.append([0] * len(bits))
                continue
            if self.adversary.controls(source):
                view = self._view()  # one snapshot per controlled row
                row = []
                for bit in bits:
                    instance = self._next_instance()
                    value = self.adversary.ideal_broadcast_bit(
                        source, bit, instance, view
                    )
                    row.append(1 if value else 0)
            else:
                self.stats.instances += len(bits)
                row = bits
            total += len(bits)
            outcomes.append(row)
        if total:
            self.stats.bits_charged += self._b * total
            self.meter.add(
                tag,
                self._b * total,
                messages=self.n * (self.n - 1) * total,
            )
        return outcomes

    def broadcast_bits_many(self, rows, tag, ignored=frozenset()):
        """Bulk fast path: when every source is honest and live, outcomes
        are the inputs and the whole call is one accounting entry with
        the summed totals — byte-identical Counter state to the per-row
        scalar path.  Controlled sources fall back to the scalar loop so
        adversary hooks observe the exact per-instance sequence.

        The returned per-pid lists of one row are shared (not copied per
        pid); callers must treat them as read-only.  Packed rows
        (:class:`~repro.utils.bits.PackedBits`) skip per-bit validation
        and are shared without copying — the bulk packed accounting path.
        """
        if not rows:
            return []
        if any(
            self.adversary.controls(source) or source in ignored
            for source, _ in rows
        ):
            return super().broadcast_bits_many(rows, tag, ignored)
        total = 0
        outcomes: list = []
        for source, bits in rows:
            if isinstance(bits, PackedBits):
                row = bits  # 0/1 by construction; shared as-is
            else:
                for bit in bits:
                    if bit not in (0, 1):
                        raise ValueError(
                            "bit must be 0 or 1, got %r" % (bit,)
                        )
                row = list(bits)
            if not 0 <= source < self.n:
                raise ValueError("source %d out of range" % source)
            total += len(bits)
            outcomes.append(dict.fromkeys(range(self.n), row))
        self.stats.instances += total
        self.stats.bits_charged += self._b * total
        self.meter.add(
            tag,
            self._b * total,
            messages=self.n * (self.n - 1) * total,
        )
        return outcomes

    def bits_per_instance(self) -> float:
        return float(self._b)
