"""Bit- and symbol-packing helpers.

The consensus protocol views an L-bit value as a sequence of generations,
each generation as a vector of ``k = n - 2t`` symbols from ``GF(2^c)``.
These helpers convert between Python integers, bit lists, byte strings and
symbol vectors deterministically (big-endian bit order throughout), so that
every processor derives an identical symbol view of the same input.
"""

from __future__ import annotations

from typing import List, Sequence


def int_to_bits(value: int, width: int) -> List[int]:
    """Return ``width`` bits of ``value``, most-significant bit first.

    Raises ``ValueError`` if ``value`` does not fit in ``width`` bits or is
    negative.
    """
    if width < 0:
        raise ValueError("width must be non-negative, got %d" % width)
    if value < 0:
        raise ValueError("value must be non-negative, got %d" % value)
    if value >> width:
        raise ValueError("value %d does not fit in %d bits" % (value, width))
    if width == 0:
        return []
    # String formatting runs in C and avoids the quadratic cost of
    # shifting a large int once per bit position.
    return [1 if ch == "1" else 0 for ch in format(value, "0%db" % width)]


def bits_to_int(bits: Sequence[int]) -> int:
    """Inverse of :func:`int_to_bits` (most-significant bit first)."""
    bits = list(bits)
    if not bits:
        return 0
    if any(bit not in (0, 1) for bit in bits):
        bad = next(bit for bit in bits if bit not in (0, 1))
        raise ValueError("bits must be 0 or 1, got %r" % (bad,))
    # int(str, 2) parses in C; joining digits beats per-bit shifting of a
    # growing big integer.
    return int("".join("1" if bit else "0" for bit in bits), 2)


def pack_symbols(symbols: Sequence[int], symbol_bits: int) -> int:
    """Pack a symbol vector into a single integer, first symbol high."""
    if symbol_bits <= 0:
        raise ValueError("symbol_bits must be positive, got %d" % symbol_bits)
    value = 0
    for symbol in symbols:
        if symbol < 0 or symbol >> symbol_bits:
            raise ValueError(
                "symbol %d does not fit in %d bits" % (symbol, symbol_bits)
            )
        value = (value << symbol_bits) | symbol
    return value


def unpack_symbols(value: int, count: int, symbol_bits: int) -> List[int]:
    """Inverse of :func:`pack_symbols`.

    Splits ``value`` into ``count`` symbols of ``symbol_bits`` bits each.
    """
    if symbol_bits <= 0:
        raise ValueError("symbol_bits must be positive, got %d" % symbol_bits)
    if count < 0:
        raise ValueError("count must be non-negative, got %d" % count)
    total_bits = count * symbol_bits
    if value < 0 or (total_bits < value.bit_length()):
        raise ValueError(
            "value %d does not fit in %d symbols of %d bits"
            % (value, count, symbol_bits)
        )
    mask = (1 << symbol_bits) - 1
    return [
        (value >> ((count - 1 - i) * symbol_bits)) & mask for i in range(count)
    ]


def bytes_to_symbols(data: bytes, symbol_bits: int) -> List[int]:
    """Split ``data`` into symbols of ``symbol_bits`` bits (MSB first).

    The total bit length of ``data`` must be a multiple of ``symbol_bits``.
    """
    total_bits = 8 * len(data)
    if total_bits % symbol_bits:
        raise ValueError(
            "%d bits of data not divisible into %d-bit symbols"
            % (total_bits, symbol_bits)
        )
    value = int.from_bytes(data, "big")
    return unpack_symbols(value, total_bits // symbol_bits, symbol_bits)


def symbols_to_bytes(symbols: Sequence[int], symbol_bits: int) -> bytes:
    """Inverse of :func:`bytes_to_symbols`."""
    total_bits = len(symbols) * symbol_bits
    if total_bits % 8:
        raise ValueError(
            "%d symbol bits do not form whole bytes" % total_bits
        )
    value = pack_symbols(symbols, symbol_bits)
    return value.to_bytes(total_bits // 8, "big")
