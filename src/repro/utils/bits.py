"""Bit- and symbol-packing helpers.

The consensus protocol views an L-bit value as a sequence of generations,
each generation as a vector of ``k = n - 2t`` symbols from ``GF(2^c)``.
These helpers convert between Python integers, bit lists, byte strings and
symbol vectors deterministically (big-endian bit order throughout), so that
every processor derives an identical symbol view of the same input.

Wide conversions (multi-kilobit values, the protocol's per-run plumbing)
run through ``np.unpackbits``/``np.packbits`` on the value's big-endian
byte form instead of per-bit Python loops; narrow ones keep the original
string-formatting fast path, which beats numpy's per-call overhead below
a few machine words.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

#: Below this width the pure-Python string paths win over numpy call
#: overhead; above it the vectorised byte paths win by orders of magnitude.
_VECTOR_THRESHOLD_BITS = 64


def is_exact_int(value: object) -> bool:
    """True iff ``value`` is exactly ``int`` — not ``bool``, not a numpy
    integer.

    The payload-validation predicate of every protocol engine: a
    Byzantine payload of ``True`` passes ``isinstance(x, int)`` *and* the
    ``0 <= x < limit`` range check, so it would masquerade as the symbol
    ``1``; an exact type check keeps non-symbol payloads out.
    """
    return type(value) is int


def _bit_array(value: int, width: int) -> np.ndarray:
    """``width`` bits of ``value`` as a uint8 array, MSB first."""
    if width == 0:
        return np.zeros(0, dtype=np.uint8)
    nbytes = (width + 7) // 8
    raw = value.to_bytes(nbytes, "big")
    bits = np.unpackbits(np.frombuffer(raw, dtype=np.uint8))
    return bits[8 * nbytes - width:]


def _int_of_bit_array(bits: np.ndarray) -> int:
    """Inverse of :func:`_bit_array` (MSB first)."""
    width = bits.shape[0]
    if width == 0:
        return 0
    pad = (-width) % 8
    if pad:
        bits = np.concatenate([np.zeros(pad, dtype=np.uint8), bits])
    return int.from_bytes(np.packbits(bits).tobytes(), "big")


class PackedBits:
    """A length-aware packed bit row: ``np.packbits`` uint8 lanes.

    The data plane's wire format for a "row of bits" — M-flags, Trust
    vectors, symbol bit-planes.  Bits are MSB-first within each lane
    byte (numpy's default ``bitorder="big"``), matching the repo-wide
    big-endian convention, and the tail bits of the final lane byte are
    zero by construction, so lane-level operations (xor, popcount,
    equality) never need masking.

    ``from_int``/``to_int`` run through the big-int-safe
    :func:`_bit_array`/:func:`_int_of_bit_array` pair, which is the
    object-dtype escape hatch for wide super-symbols: a several-hundred-
    bit symbol packs into lanes without ever touching an int64.

    Instances are treated as immutable once constructed; holders may
    share them freely (the ideal backend hands the *same* row object to
    every honest receiver).
    """

    __slots__ = ("lanes", "length")

    def __init__(self, lanes: np.ndarray, length: int) -> None:
        if lanes.dtype != np.uint8 or lanes.ndim != 1:
            raise ValueError("lanes must be a 1-D uint8 array")
        if lanes.shape[0] != (length + 7) // 8:
            raise ValueError(
                "%d lane bytes cannot hold exactly %d bits"
                % (lanes.shape[0], length)
            )
        self.lanes = lanes
        self.length = length

    # -- constructors -------------------------------------------------

    @classmethod
    def from_bits(cls, bits: Sequence[int]) -> "PackedBits":
        """Pack a validated 0/1 sequence (list, tuple or array)."""
        arr = np.asarray(bits)
        if arr.ndim != 1:
            raise ValueError("bits must be one-dimensional")
        if arr.dtype != np.bool_ and not np.issubdtype(arr.dtype, np.integer):
            # Exotic element types: validate with exact scalar semantics
            # before any lossy numpy cast (mirrors bits_to_int).
            if any(bit not in (0, 1) for bit in bits):
                bad = next(bit for bit in bits if bit not in (0, 1))
                raise ValueError("bits must be 0 or 1, got %r" % (bad,))
            # The uint8 dtype also covers the empty row, which numpy
            # would otherwise default to float64.
            arr = np.asarray(
                [1 if bit else 0 for bit in bits], dtype=np.uint8
            )
        elif arr.size and (
            arr.dtype != np.bool_ and ((arr < 0) | (arr > 1)).any()
        ):
            bad_mask = (arr < 0) | (arr > 1)
            raise ValueError(
                "bits must be 0 or 1, got %r" % (int(arr[bad_mask][0]),)
            )
        return cls(np.packbits(arr), int(arr.shape[0]))

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "PackedBits":
        """Pack a trusted uint8/bool 0/1 array without validation."""
        return cls(np.packbits(arr), int(arr.shape[0]))

    @classmethod
    def from_int(cls, value: int, width: int) -> "PackedBits":
        """``width`` MSB-first bits of a (possibly huge) ``value``."""
        if width < 0:
            raise ValueError("width must be non-negative, got %d" % width)
        if value < 0:
            raise ValueError("value must be non-negative, got %d" % value)
        if value >> width:
            raise ValueError(
                "value %d does not fit in %d bits" % (value, width)
            )
        return cls(np.packbits(_bit_array(value, width)), width)

    @classmethod
    def zeros(cls, length: int) -> "PackedBits":
        if length < 0:
            raise ValueError("length must be non-negative, got %d" % length)
        return cls(np.zeros((length + 7) // 8, dtype=np.uint8), length)

    # -- views --------------------------------------------------------

    def to_array(self) -> np.ndarray:
        """The row as a fresh uint8 0/1 array of exactly ``length``."""
        return np.unpackbits(self.lanes, count=self.length)

    def tolist(self) -> List[int]:
        return self.to_array().tolist()

    def to_int(self) -> int:
        """The row as a big integer, first bit most significant."""
        return _int_of_bit_array(self.to_array())

    # -- sequence protocol --------------------------------------------

    def __len__(self) -> int:
        return self.length

    def __iter__(self):
        return iter(self.tolist())

    def __getitem__(self, index):
        if isinstance(index, slice):
            return PackedBits.from_array(self.to_array()[index])
        if index < 0:
            index += self.length
        if not 0 <= index < self.length:
            raise IndexError("bit index out of range")
        return int((self.lanes[index >> 3] >> (7 - (index & 7))) & 1)

    # -- lane-level operations ----------------------------------------

    def __xor__(self, other: "PackedBits") -> "PackedBits":
        if not isinstance(other, PackedBits):
            return NotImplemented
        if other.length != self.length:
            raise ValueError(
                "xor of mismatched bit lengths: %d vs %d"
                % (self.length, other.length)
            )
        # Tail bits are zero in both operands, so the result's tail is
        # zero too — the invariant survives without masking.
        return PackedBits(self.lanes ^ other.lanes, self.length)

    def popcount(self) -> int:
        """Number of set bits (tail lanes are zero, so no masking)."""
        return int(np.unpackbits(self.lanes).sum())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedBits):
            return NotImplemented
        return self.length == other.length and bool(
            np.array_equal(self.lanes, other.lanes)
        )

    def __hash__(self) -> int:
        return hash((self.length, self.lanes.tobytes()))

    def __repr__(self) -> str:
        shown = "".join(str(b) for b in self.tolist()[:64])
        if self.length > 64:
            shown += "..."
        return "PackedBits(%d: %s)" % (self.length, shown)


def ints_to_bit_matrix(values: Sequence[int], width: int) -> np.ndarray:
    """Render ``len(values)`` non-negative ints as a ``(len, width)`` uint8
    bit matrix, MSB first.  Values must fit in ``width`` bits (checked by
    the callers).  The shared primitive behind wide symbol packing here
    and super-symbol row packing in the interleaved code."""
    count = len(values)
    if count == 0 or width == 0:
        return np.zeros((count, width), dtype=np.uint8)
    nbytes = (width + 7) // 8
    raw = b"".join(int(v).to_bytes(nbytes, "big") for v in values)
    octets = np.frombuffer(raw, dtype=np.uint8).reshape(count, nbytes)
    return np.unpackbits(octets, axis=1)[:, 8 * nbytes - width:]


def bit_matrix_to_ints(bits: np.ndarray) -> List[int]:
    """Inverse of :func:`ints_to_bit_matrix`: ``(count, width)`` uint8 bit
    rows (MSB first) back to a list of Python ints."""
    count, width = bits.shape
    if count == 0 or width == 0:
        return [0] * count
    pad = (-width) % 8
    if pad:
        bits = np.concatenate(
            [np.zeros((count, pad), dtype=np.uint8), bits], axis=1
        )
    data = np.packbits(bits, axis=1).tobytes()
    nbytes = (width + pad) // 8
    return [
        int.from_bytes(data[i * nbytes:(i + 1) * nbytes], "big")
        for i in range(count)
    ]


def int_to_bits(value: int, width: int) -> List[int]:
    """Return ``width`` bits of ``value``, most-significant bit first.

    Raises ``ValueError`` if ``value`` does not fit in ``width`` bits or is
    negative.
    """
    if width < 0:
        raise ValueError("width must be non-negative, got %d" % width)
    if value < 0:
        raise ValueError("value must be non-negative, got %d" % value)
    if value >> width:
        raise ValueError("value %d does not fit in %d bits" % (value, width))
    if width == 0:
        return []
    if width <= _VECTOR_THRESHOLD_BITS:
        # String formatting runs in C and avoids the quadratic cost of
        # shifting a large int once per bit position.
        return [1 if ch == "1" else 0 for ch in format(value, "0%db" % width)]
    return _bit_array(value, width).tolist()


def bits_to_int(bits: Sequence[int]) -> int:
    """Inverse of :func:`int_to_bits` (most-significant bit first)."""
    bits = list(bits)
    if not bits:
        return 0
    if len(bits) <= _VECTOR_THRESHOLD_BITS:
        if any(bit not in (0, 1) for bit in bits):
            bad = next(bit for bit in bits if bit not in (0, 1))
            raise ValueError("bits must be 0 or 1, got %r" % (bad,))
        # int(str, 2) parses in C; joining digits beats per-bit shifting of
        # a growing big integer.
        return int("".join("1" if bit else "0" for bit in bits), 2)
    arr = np.asarray(bits)
    if arr.ndim == 1 and (
        arr.dtype == np.bool_ or np.issubdtype(arr.dtype, np.integer)
    ):
        bad_mask = (arr < 0) | (arr > 1)
        if bad_mask.any():
            raise ValueError(
                "bits must be 0 or 1, got %r" % (int(arr[bad_mask][0]),)
            )
    else:
        # Exotic element types (floats, strings, objects): validate with
        # the exact scalar semantics before any lossy numpy cast.
        if any(bit not in (0, 1) for bit in bits):
            bad = next(bit for bit in bits if bit not in (0, 1))
            raise ValueError("bits must be 0 or 1, got %r" % (bad,))
        arr = np.asarray([1 if bit else 0 for bit in bits])
    return _int_of_bit_array(arr.astype(np.uint8))


def pack_symbols(symbols: Sequence[int], symbol_bits: int) -> int:
    """Pack a symbol vector into a single integer, first symbol high."""
    if symbol_bits <= 0:
        raise ValueError("symbol_bits must be positive, got %d" % symbol_bits)
    symbols = list(symbols)
    for symbol in symbols:
        if symbol < 0 or symbol >> symbol_bits:
            raise ValueError(
                "symbol %d does not fit in %d bits" % (symbol, symbol_bits)
            )
    total_bits = len(symbols) * symbol_bits
    if total_bits <= _VECTOR_THRESHOLD_BITS:
        value = 0
        for symbol in symbols:
            value = (value << symbol_bits) | symbol
        return value
    # Render each symbol to a bit row, concatenate, and re-pack — linear
    # in the total bit count, unlike big-int shifting which is quadratic
    # in the number of symbols.
    bits = ints_to_bit_matrix(symbols, symbol_bits)
    return _int_of_bit_array(bits.reshape(total_bits))


def unpack_symbols(value: int, count: int, symbol_bits: int) -> List[int]:
    """Inverse of :func:`pack_symbols`.

    Splits ``value`` into ``count`` symbols of ``symbol_bits`` bits each.
    """
    if symbol_bits <= 0:
        raise ValueError("symbol_bits must be positive, got %d" % symbol_bits)
    if count < 0:
        raise ValueError("count must be non-negative, got %d" % count)
    total_bits = count * symbol_bits
    if value < 0 or (total_bits < value.bit_length()):
        raise ValueError(
            "value %d does not fit in %d symbols of %d bits"
            % (value, count, symbol_bits)
        )
    if total_bits <= _VECTOR_THRESHOLD_BITS:
        mask = (1 << symbol_bits) - 1
        return [
            (value >> ((count - 1 - i) * symbol_bits)) & mask
            for i in range(count)
        ]
    bits = _bit_array(value, total_bits).reshape(count, symbol_bits)
    if symbol_bits < 63:
        weights = 1 << np.arange(symbol_bits - 1, -1, -1, dtype=np.int64)
        return (bits.astype(np.int64) @ weights).tolist()
    # Wide symbols (the protocol's multi-hundred-bit super-symbols) cannot
    # live in int64 lanes: read each bit row back as a big int.
    return bit_matrix_to_ints(bits)


def bytes_to_symbols(data: bytes, symbol_bits: int) -> List[int]:
    """Split ``data`` into symbols of ``symbol_bits`` bits (MSB first).

    The total bit length of ``data`` must be a multiple of ``symbol_bits``.
    """
    total_bits = 8 * len(data)
    if total_bits % symbol_bits:
        raise ValueError(
            "%d bits of data not divisible into %d-bit symbols"
            % (total_bits, symbol_bits)
        )
    value = int.from_bytes(data, "big")
    return unpack_symbols(value, total_bits // symbol_bits, symbol_bits)


def symbols_to_bytes(symbols: Sequence[int], symbol_bits: int) -> bytes:
    """Inverse of :func:`bytes_to_symbols`."""
    total_bits = len(symbols) * symbol_bits
    if total_bits % 8:
        raise ValueError(
            "%d symbol bits do not form whole bytes" % total_bits
        )
    value = pack_symbols(symbols, symbol_bits)
    return value.to_bytes(total_bits // 8, "big")
