"""Utility helpers shared across the repro package."""

from repro.utils.bits import (
    bits_to_int,
    bytes_to_symbols,
    int_to_bits,
    pack_symbols,
    symbols_to_bytes,
    unpack_symbols,
)
from repro.utils.rng import derive_rng, derive_seed

__all__ = [
    "bits_to_int",
    "int_to_bits",
    "pack_symbols",
    "unpack_symbols",
    "bytes_to_symbols",
    "symbols_to_bytes",
    "derive_rng",
    "derive_seed",
]
