"""Deterministic RNG derivation shared by every randomized component.

All randomness in the simulator — the Mostefaoui common coin, the
Dolev-Strong forgery lottery, fault-plan jitter, planned-strategy
decisions — must replay byte-identically from one ``seed=``.  The rule
that makes this composable is *derivation*: nobody shares a live
``random.Random`` across components (order of consumption would couple
them); instead each component derives its own stream from the master
seed plus a scope label.

>>> derive_seed(7, "coin", 3) == derive_seed(7, "coin", 3)
True
>>> derive_seed(7, "coin", 3) != derive_seed(7, "coin", 4)
True
>>> derive_rng(7, "forgery").random() == derive_rng(7, "forgery").random()
True
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["derive_seed", "derive_rng"]


def derive_seed(seed: int, *scope) -> int:
    """A 64-bit seed derived stably from ``seed`` and a scope path.

    The derivation is SHA-256 over a canonical encoding, so it is stable
    across processes, platforms and Python versions (unlike ``hash()``,
    which is salted).  Scope components may be ints or strings.
    """
    h = hashlib.sha256()
    h.update(b"repro.rng\x00")
    h.update(str(int(seed)).encode("ascii"))
    for part in scope:
        h.update(b"\x00")
        if isinstance(part, int):
            h.update(b"i" + str(part).encode("ascii"))
        else:
            h.update(b"s" + str(part).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big")


def derive_rng(seed: int, *scope) -> random.Random:
    """A fresh ``random.Random`` seeded by :func:`derive_seed`."""
    return random.Random(derive_seed(seed, *scope))
