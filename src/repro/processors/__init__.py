"""Processor framework and the Byzantine adversary model.

The paper's adversary is *omniscient*: it knows every processor's state and
input, controls up to ``t`` processors, and can make them deviate
arbitrarily — equivocate, lie in broadcasts, accuse falsely, or stay
silent.  We model this with an :class:`~repro.processors.adversary.Adversary`
object that the protocol engines consult at every step where a faulty
processor emits information.  The base class plays honestly (faulty but
well-behaved); each attack in :mod:`repro.processors.byzantine` overrides
exactly the hooks it needs.  Because hooks replace message *payloads* but
never message *sizes*, Byzantine behaviour cannot distort the
communication-complexity accounting, matching the paper's definition
(bits transmitted per the algorithm specification).
"""

from repro.processors.adaptive import AdaptiveAdversary
from repro.processors.adversary import Adversary, GlobalView
from repro.processors.composite import CompositeAdversary
from repro.processors.registry import (
    ATTACKS,
    FAULT_GRID_ATTACKS,
    TIMING_FAULT_ATTACKS,
    AttackEntry,
    make_attack,
    normalize_attack,
)
from repro.processors.byzantine import (
    CollidingInputAdversary,
    CrashAdversary,
    EquivocatingAdversary,
    FalseAccusationAdversary,
    FalseDetectionAdversary,
    RandomAdversary,
    SlowBleedAdversary,
    StagedEquivocationAdversary,
    SymbolCorruptionAdversary,
    TrustPoisoningAdversary,
)

__all__ = [
    "ATTACKS",
    "FAULT_GRID_ATTACKS",
    "TIMING_FAULT_ATTACKS",
    "AttackEntry",
    "make_attack",
    "normalize_attack",
    "Adversary",
    "AdaptiveAdversary",
    "CompositeAdversary",
    "GlobalView",
    "CrashAdversary",
    "SymbolCorruptionAdversary",
    "EquivocatingAdversary",
    "FalseAccusationAdversary",
    "FalseDetectionAdversary",
    "SlowBleedAdversary",
    "RandomAdversary",
    "CollidingInputAdversary",
    "TrustPoisoningAdversary",
    "StagedEquivocationAdversary",
]
