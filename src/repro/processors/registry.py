"""The canonical attack registry.

One table of named Byzantine strategies shared by every driver — the CLI,
:mod:`repro.analysis.sweeps`, the benchmarks and the service layer — so
attack names, default faulty sets and seeding behave identically
everywhere.  Historically ``repro.cli`` and ``repro.analysis.sweeps``
each kept a private ``ATTACKS`` dict with diverging names (hyphenated vs
underscored) and coverage; both now route through this module.

Names are canonical in ``snake_case``; :func:`normalize_attack` folds the
CLI's historical hyphenated spellings (``slow-bleed``) onto them, so any
spelling a driver ever accepted keeps working.

Each :class:`AttackEntry` knows its attack-specific default faulty set,
chosen so the attack actually bites: the lexicographic ``P_match`` search
favours low pids, so attacks that must operate *inside* ``P_match``
(symbol corruption, staged equivocation, the slow-bleed planner) default
to low pids, while attacks operating from outside (crash, false
detection, trust poisoning) default to high pids.  Passing an explicit
``faulty`` overrides the default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.attacks import (
    adaptive_split_adversary,
    delay_storm_adversary,
    omit_rounds_adversary,
)
from repro.processors.adversary import Adversary
from repro.processors.byzantine import (
    CrashAdversary,
    FalseAccusationAdversary,
    FalseDetectionAdversary,
    RandomAdversary,
    SlowBleedAdversary,
    StagedEquivocationAdversary,
    SymbolCorruptionAdversary,
    TrustPoisoningAdversary,
)

#: Signature of an entry's builder: ``(n, t, l_bits, faulty, seed)``;
#: ``faulty`` is ``None`` when the caller wants the entry's default.
Builder = Callable[[int, int, int, Optional[List[int]], int], Adversary]


@dataclass(frozen=True)
class AttackEntry:
    """One named Byzantine strategy and its deployment defaults."""

    name: str
    #: Builds the adversary; resolves ``faulty=None`` to its own default.
    build: Builder
    #: Attack-specific default faulty pids for an ``(n, t)`` deployment.
    default_faulty: Callable[[int, int], List[int]]
    #: One-line description shown by CLI help and docs.
    summary: str = ""
    #: Whether the strategy actually deviates (False only for "none").
    byzantine: bool = True


def _low(n: int, t: int) -> List[int]:
    return list(range(t))


def _high(n: int, t: int) -> List[int]:
    return list(range(n - t, n))


def _build_corrupt(n, t, l_bits, faulty, seed):
    if faulty is None:
        # The registry default: one P_match member corrupts the symbol it
        # sends to the last processor, which detects and triggers a
        # diagnosis (the sweeps' historical shape, kept byte-identical).
        return SymbolCorruptionAdversary([0], victims={0: [n - 1]})
    return SymbolCorruptionAdversary(faulty)


def _build_equivocate(n, t, l_bits, faulty, seed):
    # Self-consistent equivocation towards the last processor: show it a
    # genuine codeword of value 0, which differs from any non-zero input.
    faulty = [0] if faulty is None else faulty
    deceived = [pid for pid in (n - 1,) if pid not in faulty]
    return StagedEquivocationAdversary(faulty, deceived=deceived, alt_value=0)


def _simple(
    adversary_class, default_faulty: Callable[[int, int], List[int]]
) -> Builder:
    """Builder for strategies fully described by their faulty set."""

    def build(n, t, l_bits, faulty, seed):
        if faulty is None:
            faulty = default_faulty(n, t)
        return adversary_class(faulty)

    return build


def _build_random(n, t, l_bits, faulty, seed):
    if faulty is None:
        faulty = _low(n, t)
    return RandomAdversary(faulty, seed=seed)


def _seeded(factory, default_faulty: Callable[[int, int], List[int]]) -> Builder:
    """Builder for ``factory(faulty, seed=...)`` fault-layer strategies."""

    def build(n, t, l_bits, faulty, seed):
        if faulty is None:
            faulty = default_faulty(n, t)
        return factory(faulty, seed=seed)

    return build


ATTACKS: Dict[str, AttackEntry] = {
    entry.name: entry
    for entry in (
        AttackEntry(
            name="none",
            build=_simple(Adversary, lambda n, t: []),
            default_faulty=lambda n, t: [],
            summary="compliant no-op (faulty pids behave honestly)",
            byzantine=False,
        ),
        AttackEntry(
            name="crash",
            build=_simple(CrashAdversary, _high),
            default_faulty=_high,
            summary="fail-stop: faulty processors fall silent",
        ),
        AttackEntry(
            name="corrupt",
            build=_build_corrupt,
            default_faulty=lambda n, t: [0],
            summary="a P_match member corrupts one victim's symbol",
        ),
        AttackEntry(
            name="equivocate",
            build=_build_equivocate,
            default_faulty=lambda n, t: [0],
            summary="self-consistent codeword of a different value",
        ),
        AttackEntry(
            name="false_accuse",
            build=_simple(FalseAccusationAdversary, _low),
            default_faulty=_low,
            summary="all-false M vectors accusing every peer",
        ),
        AttackEntry(
            name="false_detect",
            build=_simple(FalseDetectionAdversary, _high),
            default_faulty=_high,
            summary="outsiders cry Detected every generation",
        ),
        AttackEntry(
            name="trust_poison",
            build=_simple(TrustPoisoningAdversary, _high),
            default_faulty=_high,
            summary="diagnosis Trust vectors accuse honest P_match",
        ),
        AttackEntry(
            name="slow_bleed",
            build=_simple(SlowBleedAdversary, _low),
            default_faulty=_low,
            summary="one bad edge per generation (worst-case diagnoses)",
        ),
        AttackEntry(
            name="random",
            build=_build_random,
            default_faulty=_low,
            summary="seeded chaos monkey: every hook deviates at random",
        ),
        AttackEntry(
            name="omit_rounds",
            build=_seeded(omit_rounds_adversary, _low),
            default_faulty=_low,
            summary="network omits every faulty-sender message (timing fault)",
        ),
        AttackEntry(
            name="delay_storm",
            build=_seeded(delay_storm_adversary, _low),
            default_faulty=_low,
            summary="faulty-sender messages arrive one round late (timing fault)",
        ),
        AttackEntry(
            name="adaptive_split",
            build=_seeded(adaptive_split_adversary, _low),
            default_faulty=_low,
            summary="probe, then strike the weakest honest victim on a budget",
        ),
    )
}

#: The pinned fault-injection grid: the six deterministic attacks the
#: adversarial benchmarks and ``sweep_faults`` have always swept (the
#: expected-bit tables in ``bench_wallclock.py`` are keyed to exactly
#: this set).  ``false_accuse`` and ``random`` stay out: the former
#: cannot force a diagnosis on its own and the latter is for
#: property-based testing, not for tracked bit tables.
FAULT_GRID_ATTACKS: Tuple[str, ...] = (
    "corrupt",
    "crash",
    "equivocate",
    "false_detect",
    "slow_bleed",
    "trust_poison",
)

#: The timing-fault grid: strategies that attack message *delivery*
#: through an installed :class:`repro.faults.FaultPlan` rather than
#: message content.  Swept separately from :data:`FAULT_GRID_ATTACKS`
#: (whose expected-bit tables are pinned to the six content attacks):
#: timing-fault runs stay off the cohort fast path, so their grid
#: asserts correctness and determinism, not the pinned bit tables.
TIMING_FAULT_ATTACKS: Tuple[str, ...] = (
    "omit_rounds",
    "delay_storm",
)

#: Historical spellings accepted by older drivers, folded onto canonical
#: names (beyond the mechanical hyphen/underscore normalization).
_ALIASES = {
    "honest": "none",
}


def normalize_attack(name: str) -> str:
    """Fold any historically accepted spelling onto the canonical name.

    Lower-cases, strips whitespace and maps hyphens to underscores, so
    the CLI's ``slow-bleed`` and the sweeps' ``slow_bleed`` are the same
    attack.  Unknown names pass through unchanged (the caller's lookup
    reports them with the full menu).
    """
    canonical = name.strip().lower().replace("-", "_")
    return _ALIASES.get(canonical, canonical)


def attack_cohort_id(
    name: str, faulty: Optional[Sequence[int]] = None
) -> Tuple[str, Optional[Tuple[int, ...]]]:
    """The attack-shape identity used for cohort grouping.

    Two instances share a cohort id exactly when :func:`make_attack`
    would build them structurally identical adversaries up to seeding:
    the canonical attack name plus the *declared* faulty set.  The
    declared (pre-resolution) set is the right key — builders may pick a
    different strategy for ``faulty=None`` than for an explicit
    equivalent list (``corrupt`` defaults to a single targeted victim
    but corrupts everyone when pids are passed explicitly), so resolving
    defaults here would merge genuinely different shapes.  The seed is
    deliberately excluded: seeded strategies with different seeds still
    share every structural input to the protocol (faulty set, hook call
    pattern), which is all cohort batching relies on.
    """
    return (
        normalize_attack(name),
        tuple(faulty) if faulty is not None else None,
    )


def make_attack(
    name: str,
    n: int,
    t: int,
    l_bits: int,
    seed: int = 0,
    faulty: Optional[Sequence[int]] = None,
) -> Adversary:
    """Instantiate the named attack for an ``(n, t)`` deployment.

    Args:
        name: a key of :data:`ATTACKS`, in any accepted spelling.
        n: number of processors.
        t: tolerated faults; Byzantine attacks require ``t >= 1``.
        l_bits: the consensus value width (some strategies size their
            forged values to it).
        seed: seed for randomised strategies (ignored by the rest).
        faulty: explicit faulty pids; default the entry's
            attack-specific choice.

    Returns:
        A fresh :class:`~repro.processors.adversary.Adversary`; building
        is deterministic, so equal arguments give behaviourally
        identical adversaries (the service layer relies on this to
        reconstruct adversaries inside executor processes).
    """
    key = normalize_attack(name)
    try:
        entry = ATTACKS[key]
    except KeyError:
        raise ValueError(
            "unknown attack %r (choose from %s)" % (name, sorted(ATTACKS))
        )
    if entry.byzantine and t < 1:
        raise ValueError("attack %r needs t >= 1, got t=%d" % (key, t))
    resolved = list(faulty) if faulty is not None else None
    return entry.build(n, t, l_bits, resolved, seed)
