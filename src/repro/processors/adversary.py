"""Adversary interface: every point where a faulty processor can deviate.

The engines (consensus generations, broadcast backends, baselines) call
these hooks whenever a *faulty* processor is about to emit information.
Each hook receives the value an honest processor would have sent plus a
:class:`GlobalView` of the whole system (the paper's adversary hides no
secrets), and returns what the faulty processor actually sends.  The base
class returns the honest value everywhere, modelling faulty-but-compliant
processors; attacks subclass it.

Hooks that can equivocate (send different things to different receivers)
take a ``recipient`` argument.  Hooks that feed ``Broadcast_Single_Bit``
cannot equivocate in their *outcome* — the broadcast primitive guarantees
all fault-free processors receive the same value — but faulty processors
can still lie about the value itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set


@dataclass
class GlobalView:
    """Everything the omniscient adversary can see.

    ``states`` maps pid -> the engine's per-processor state object;
    ``extras`` carries engine-specific context (generation index, stage
    name, the diagnosis graph, ...).  Adversaries must treat the view as
    read-only; engines share live objects for efficiency.
    """

    n: int
    t: int
    faulty: Set[int]
    states: Dict[int, Any] = field(default_factory=dict)
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def honest(self) -> Set[int]:
        return set(range(self.n)) - self.faulty


class Adversary:
    """Base adversary: controls ``faulty`` but plays every hook honestly."""

    def __init__(self, faulty: Optional[Sequence[int]] = None):
        self.faulty: Set[int] = set(faulty or ())

    def controls(self, pid: int) -> bool:
        return pid in self.faulty

    # -- consensus: input substitution ---------------------------------------

    def input_value(self, pid: int, honest_input: int, view: GlobalView) -> int:
        """The L-bit input a faulty processor pretends to hold."""
        return honest_input

    # -- consensus: matching stage -------------------------------------------

    def matching_symbol(
        self,
        pid: int,
        recipient: int,
        honest_symbol: int,
        generation: int,
        view: GlobalView,
    ) -> Optional[int]:
        """Symbol ``S_i[i]`` a faulty ``pid`` sends to ``recipient``.

        Return ``None`` to stay silent (the receiver treats a missing
        message from a trusted peer as a mismatching distinguished value).
        """
        return honest_symbol

    def m_vector(
        self,
        pid: int,
        honest_m: List[bool],
        generation: int,
        view: GlobalView,
    ) -> List[bool]:
        """The M vector a faulty ``pid`` feeds into Broadcast_Single_Bit."""
        return honest_m

    # -- consensus: checking stage ---------------------------------------------

    def detected_flag(
        self,
        pid: int,
        honest_flag: bool,
        generation: int,
        view: GlobalView,
    ) -> bool:
        """The Detected bit a faulty ``pid`` (outside P_match) broadcasts."""
        return honest_flag

    # -- consensus: diagnosis stage ---------------------------------------------

    def diagnosis_symbol(
        self,
        pid: int,
        honest_symbol: int,
        generation: int,
        view: GlobalView,
    ) -> int:
        """The symbol ``S_j[j]`` a faulty ``pid`` in P_match broadcasts."""
        return honest_symbol

    def trust_vector(
        self,
        pid: int,
        honest_trust: Dict[int, bool],
        generation: int,
        view: GlobalView,
    ) -> Dict[int, bool]:
        """The Trust_i/P_match vector a faulty ``pid`` broadcasts."""
        return honest_trust

    # -- 1-bit broadcast internals -----------------------------------------------

    def bsb_source_bit(
        self,
        source: int,
        recipient: int,
        honest_bit: int,
        instance: int,
        view: GlobalView,
    ) -> Optional[int]:
        """Initial bit a faulty broadcast *source* sends to ``recipient``.

        Equivocation allowed; ``None`` = silent (receiver assumes 0).
        """
        return honest_bit

    def ideal_broadcast_bit(
        self,
        source: int,
        honest_bit: int,
        instance: int,
        view: GlobalView,
    ) -> int:
        """Outcome a faulty source imposes under the accounted-ideal backend.

        A correct broadcast still guarantees agreement, so the adversary
        picks one bit delivered identically to everybody.
        """
        return honest_bit

    def king_value(
        self,
        pid: int,
        recipient: int,
        phase: int,
        honest_value: int,
        instance: int,
        view: GlobalView,
    ) -> Optional[int]:
        """Phase-King round-1 value a faulty ``pid`` sends to ``recipient``."""
        return honest_value

    def king_proposal(
        self,
        pid: int,
        recipient: int,
        phase: int,
        honest_proposal: Optional[int],
        instance: int,
        view: GlobalView,
    ) -> Optional[int]:
        """Phase-King round-2 proposal (``None`` = no proposal)."""
        return honest_proposal

    def king_bit(
        self,
        pid: int,
        recipient: int,
        phase: int,
        honest_bit: int,
        instance: int,
        view: GlobalView,
    ) -> Optional[int]:
        """Phase-King round-3 king message from a faulty king."""
        return honest_bit

    def eig_relay(
        self,
        pid: int,
        recipient: int,
        path: Sequence[int],
        honest_value: int,
        instance: int,
        view: GlobalView,
    ) -> Optional[int]:
        """Value a faulty ``pid`` relays for EIG tree node ``path``."""
        return honest_value

    # -- randomized common-coin backend (Mostefaoui) -------------------------------

    def est_value(
        self,
        pid: int,
        recipient: int,
        honest_est: int,
        round_index: int,
        instance: int,
        view: GlobalView,
    ) -> Optional[int]:
        """EST bit a faulty ``pid`` sends ``recipient`` in BV-broadcast.

        Equivocation allowed; ``None`` = silent (omission).
        """
        return honest_est

    def aux_value(
        self,
        pid: int,
        recipient: int,
        honest_aux: int,
        round_index: int,
        instance: int,
        view: GlobalView,
    ) -> Optional[int]:
        """AUX bit a faulty ``pid`` sends ``recipient``.

        Equivocation allowed; ``None`` = silent (omission).
        """
        return honest_aux

    def coin_reveal(
        self,
        instance: int,
        round_index: int,
        honest_coin: int,
        view: GlobalView,
    ) -> int:
        """Common-coin value the adversary imposes for one round.

        Models a corruptible coin dealer: the returned bit *is* the coin
        every processor sees (the coin stays common — per-processor coin
        splits are out of model).  After the backend's derandomization
        cap the hook is ignored, so termination cannot be stalled
        forever.
        """
        return honest_coin

    # -- multi-valued broadcast (Section 4) ---------------------------------------

    def source_symbol(
        self,
        source: int,
        recipient: int,
        honest_symbol: int,
        generation: int,
        view: GlobalView,
    ) -> Optional[int]:
        """Symbol a faulty *source* disperses to ``recipient``."""
        return honest_symbol

    def forwarded_symbol(
        self,
        pid: int,
        recipient: int,
        honest_symbol: int,
        generation: int,
        view: GlobalView,
    ) -> Optional[int]:
        """Symbol a faulty peer forwards during broadcast relay."""
        return honest_symbol

    def source_codeword(
        self,
        source: int,
        honest_codeword: List[int],
        generation: int,
        view: GlobalView,
    ) -> List[int]:
        """Codeword a faulty source claims during broadcast diagnosis."""
        return list(honest_codeword)

    # -- signatures (t >= n/3 probabilistic substrate) ------------------------------

    def forge_signature(
        self,
        forger: int,
        victim: int,
        message: Any,
        view: GlobalView,
    ) -> bool:
        """Whether a forgery attempt against ``victim``'s key succeeds.

        The information-theoretic pseudo-signatures the paper cites ([10],
        [4]) fail with probability ~2^-kappa; simulated substrates call
        this to decide each attempt.  Honest default: forgeries never
        succeed.
        """
        return False
