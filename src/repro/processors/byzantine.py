"""Concrete Byzantine strategies.

Each strategy deviates in exactly the hooks its attack needs; everything
else stays honest, which makes tests precise about *which* misbehaviour a
protocol property survives.  All randomness is seeded for reproducibility.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.processors.adversary import Adversary, GlobalView


class CrashAdversary(Adversary):
    """Faulty processors fall silent from ``crash_generation`` onwards.

    Models fail-stop behaviour inside the Byzantine envelope: silence from
    a trusted peer shows up as a mismatching symbol, so crashes are handled
    by the same matching/diagnosis machinery.
    """

    def __init__(self, faulty: Sequence[int], crash_generation: int = 0):
        super().__init__(faulty)
        self.crash_generation = crash_generation

    def _crashed(self, generation: int) -> bool:
        return generation >= self.crash_generation

    def matching_symbol(self, pid, recipient, honest_symbol, generation, view):
        if self._crashed(generation):
            return None
        return honest_symbol

    def m_vector(self, pid, honest_m, generation, view):
        if self._crashed(generation):
            return [False] * len(honest_m)
        return honest_m

    def detected_flag(self, pid, honest_flag, generation, view):
        if self._crashed(generation):
            return False
        return honest_flag

    def source_symbol(self, source, recipient, honest_symbol, generation, view):
        if self._crashed(generation):
            return None
        return honest_symbol

    def forwarded_symbol(self, pid, recipient, honest_symbol, generation, view):
        if self._crashed(generation):
            return None
        return honest_symbol


class SymbolCorruptionAdversary(Adversary):
    """Faulty processors corrupt the RS symbol sent to chosen victims.

    ``victims`` maps faulty pid -> list of recipients whose copy gets
    XOR-flipped.  Everything else (M vectors, broadcasts) stays honest, so
    this exercises detection by the checking stage and blame assignment by
    the diagnosis stage in isolation.
    """

    def __init__(
        self,
        faulty: Sequence[int],
        victims: Optional[Dict[int, Sequence[int]]] = None,
        flip_mask: int = 1,
    ):
        super().__init__(faulty)
        self.victims = {
            pid: set(v) for pid, v in (victims or {}).items()
        }
        if not victims:
            # Default: every faulty processor corrupts every recipient.
            self.victims = {pid: None for pid in self.faulty}
        self.flip_mask = flip_mask

    def _is_victim(self, pid: int, recipient: int) -> bool:
        targets = self.victims.get(pid)
        return targets is None or recipient in targets

    def matching_symbol(self, pid, recipient, honest_symbol, generation, view):
        if self._is_victim(pid, recipient):
            return honest_symbol ^ self.flip_mask
        return honest_symbol

    def forwarded_symbol(self, pid, recipient, honest_symbol, generation, view):
        if self._is_victim(pid, recipient):
            return honest_symbol ^ self.flip_mask
        return honest_symbol

    def source_symbol(self, source, recipient, honest_symbol, generation, view):
        if self._is_victim(source, recipient):
            return honest_symbol ^ self.flip_mask
        return honest_symbol


class EquivocatingAdversary(Adversary):
    """Faulty processors pretend to hold different inputs towards different
    peers: recipients with pid below ``split`` see symbols of
    ``value_low``'s codeword, the rest see ``value_high``'s.

    The M flags are computed honestly *per pretended value*, which is the
    strongest equivocation consistent with the message format.
    """

    def __init__(self, faulty: Sequence[int], split: int, alt_value: int):
        super().__init__(faulty)
        self.split = split
        self.alt_value = alt_value

    def input_value(self, pid, honest_input, view):
        return honest_input

    def matching_symbol(self, pid, recipient, honest_symbol, generation, view):
        if recipient >= self.split:
            code = view.extras.get("code")
            alt_parts = view.extras.get("alt_parts")
            if code is not None and alt_parts is not None:
                return code.encode(alt_parts[generation])[pid]
        return honest_symbol


class FalseAccusationAdversary(Adversary):
    """Faulty processors broadcast all-false M vectors, accusing everyone.

    This can prevent any P_match containing them; the protocol must still
    find a fault-free P_match (Lemma 1) or correctly fall to the default.
    """

    def m_vector(self, pid, honest_m, generation, view):
        return [False] * len(honest_m)


class FalseDetectionAdversary(Adversary):
    """Faulty processors outside P_match always cry wolf (Detected = true)
    while behaving honestly otherwise.

    Exercises line 3(f): with a consistent R#, a complainer with no removed
    edge is provably lying and gets isolated.
    """

    def detected_flag(self, pid, honest_flag, generation, view):
        return True


class SlowBleedAdversary(Adversary):
    """Worst-case diagnosis-count strategy for Theorem 1's t(t+1) bound.

    Each generation spends at most *one* bad edge, stretching the number of
    diagnosis stages towards the ``t(t+1)`` ceiling.  Two plays, planned by
    emulating the protocol's deterministic P_match search on the current
    diagnosis graph:

    * **attack** — a faulty processor corrupts the symbol it sends to one
      honest victim, chosen so the corrupted M flags still leave a P_match
      containing the attacker and excluding the victim.  The victim detects
      the inconsistency, diagnosis runs, and exactly the edge
      (attacker, victim) is removed.
    * **accuse** — when no attack is viable, a faulty processor that falls
      outside P_match cries Detected and falsely distrusts a fellow faulty
      processor inside P_match; the mutual bad edge is removed, and the
      removal at the complainer's own vertex shields it from the line-3(f)
      false-alarm isolation.
    """

    def __init__(self, faulty: Sequence[int]):
        super().__init__(faulty)
        self.attack_log: List[Dict[str, int]] = []
        self._plan: Dict[int, Optional[tuple]] = {}

    def _emulate_match(self, graph, n: int, t: int, broken=None):
        """Run the engine's exact P_match search for an all-honest-matching
        round, optionally with one (attacker, victim) mismatch.

        Works on the trust mask directly (no per-vertex set building):
        the planner probes every (attacker, victim) pair per generation,
        so its clique searches are the adversary's own hot path at
        large n."""
        import numpy as np

        from repro.graphs.cliques import find_clique_matrix

        adjacency = np.array(graph.trust_mask())
        if broken is not None:
            i, j = broken
            adjacency[i, j] = adjacency[j, i] = False
        clique = find_clique_matrix(adjacency, n - t)
        return tuple(clique) if clique is not None else None

    def _plan_for(self, generation: int, view: GlobalView):
        if generation in self._plan:
            return self._plan[generation]
        graph = view.extras.get("diag_graph")
        n, t = view.n, view.t
        choice = None
        if graph is not None:
            # Play 1: find a viable (attacker, victim) symbol corruption.
            for attacker in sorted(self.faulty):
                if graph.is_isolated(attacker):
                    continue
                for victim in sorted(
                    (
                        peer
                        for peer in graph.trusted_by(attacker)
                        if peer not in self.faulty
                    ),
                    reverse=True,
                ):
                    match = self._emulate_match(
                        graph, n, t, broken=(attacker, victim)
                    )
                    if (
                        match is not None
                        and attacker in match
                        and victim not in match
                    ):
                        choice = ("attack", attacker, victim)
                        break
                if choice:
                    break
            # Play 2: burn a faulty-faulty edge via a false accusation.  The
            # accuser broadcasts an all-false M vector, forcing itself out
            # of P_match, then cries Detected and distrusts the target; the
            # removed (accuser, target) edge shields it from line 3(f).
            if choice is None:
                import numpy as np

                from repro.graphs.cliques import find_clique_matrix

                for accuser in sorted(self.faulty):
                    if graph.is_isolated(accuser):
                        continue
                    match = find_clique_matrix(
                        np.asarray(graph.trust_mask()),
                        n - t,
                        candidates=[
                            v for v in range(n) if v != accuser
                        ],
                    )
                    if match is None:
                        continue
                    targets = [
                        p
                        for p in match
                        if p in self.faulty and graph.trusts(accuser, p)
                    ]
                    if targets:
                        choice = ("accuse", accuser, targets[0])
                        break
        self._plan[generation] = choice
        if choice is not None:
            self.attack_log.append(
                {
                    "generation": generation,
                    "play": choice[0],
                    "actor": choice[1],
                    "target": choice[2],
                }
            )
        return choice

    def matching_symbol(self, pid, recipient, honest_symbol, generation, view):
        plan = self._plan_for(generation, view)
        if plan is not None and plan[0] == "attack":
            if (pid, recipient) == (plan[1], plan[2]):
                return honest_symbol ^ 1
        return honest_symbol

    def m_vector(self, pid, honest_m, generation, view):
        plan = self._plan_for(generation, view)
        if plan is not None and plan[0] == "accuse" and pid == plan[1]:
            return [False] * len(honest_m)
        return honest_m

    def detected_flag(self, pid, honest_flag, generation, view):
        plan = self._plan_for(generation, view)
        if plan is not None and plan[0] == "accuse" and pid == plan[1]:
            return True
        return honest_flag

    def trust_vector(self, pid, honest_trust, generation, view):
        plan = self._plan_for(generation, view)
        if plan is not None and plan[0] == "accuse" and pid == plan[1]:
            doctored = dict(honest_trust)
            if plan[2] in doctored:
                doctored[plan[2]] = False
            return doctored
        return honest_trust


class RandomAdversary(Adversary):
    """Seeded chaos monkey: every hook deviates with probability ``rate``.

    Used by property-based tests: whatever this adversary does, the
    protocol must keep Termination, Consistency and Validity (the paper's
    algorithm is error-free against *arbitrary* behaviour).
    """

    def __init__(self, faulty: Sequence[int], seed: int = 0, rate: float = 0.5):
        super().__init__(faulty)
        self.rng = random.Random(seed)
        self.rate = rate

    def _deviate(self) -> bool:
        return self.rng.random() < self.rate

    def _random_symbol(self, view: GlobalView) -> int:
        code = view.extras.get("code")
        limit = code.symbol_limit if code is not None else 2
        return self.rng.randrange(limit)

    def input_value(self, pid, honest_input, view):
        bits = view.extras.get("l_bits", 8)
        if self._deviate():
            return self.rng.randrange(1 << min(bits, 48))
        return honest_input

    def matching_symbol(self, pid, recipient, honest_symbol, generation, view):
        if self._deviate():
            if self._deviate():
                return None
            return self._random_symbol(view)
        return honest_symbol

    def m_vector(self, pid, honest_m, generation, view):
        if self._deviate():
            return [self.rng.random() < 0.5 for _ in honest_m]
        return honest_m

    def detected_flag(self, pid, honest_flag, generation, view):
        if self._deviate():
            return not honest_flag
        return honest_flag

    def diagnosis_symbol(self, pid, honest_symbol, generation, view):
        if self._deviate():
            return self._random_symbol(view)
        return honest_symbol

    def trust_vector(self, pid, honest_trust, generation, view):
        if self._deviate():
            return {
                peer: self.rng.random() < 0.5 for peer in honest_trust
            }
        return honest_trust

    def bsb_source_bit(self, source, recipient, honest_bit, instance, view):
        if self._deviate():
            return self.rng.randrange(2)
        return honest_bit

    def ideal_broadcast_bit(self, source, honest_bit, instance, view):
        if self._deviate():
            return honest_bit ^ 1
        return honest_bit

    def king_value(self, pid, recipient, phase, honest_value, instance, view):
        if self._deviate():
            return self.rng.randrange(2)
        return honest_value

    def king_proposal(self, pid, recipient, phase, honest_proposal, instance, view):
        if self._deviate():
            return self.rng.choice([None, 0, 1])
        return honest_proposal

    def king_bit(self, pid, recipient, phase, honest_bit, instance, view):
        if self._deviate():
            return self.rng.randrange(2)
        return honest_bit

    def eig_relay(self, pid, recipient, path, honest_value, instance, view):
        if self._deviate():
            return self.rng.randrange(2)
        return honest_value

    def source_symbol(self, source, recipient, honest_symbol, generation, view):
        if self._deviate():
            return self._random_symbol(view)
        return honest_symbol

    def forwarded_symbol(self, pid, recipient, honest_symbol, generation, view):
        if self._deviate():
            return self._random_symbol(view)
        return honest_symbol

    def source_codeword(self, source, honest_codeword, generation, view):
        if self._deviate():
            return [self._random_symbol(view) for _ in honest_codeword]
        return list(honest_codeword)


class CollidingInputAdversary(Adversary):
    """Adversary for the Fitzi-Hirt error-probability experiment (E6).

    Faulty "happy" processors deliver ``forged_value`` — crafted off-line to
    collide with the honest value under the baseline's universal hash —
    instead of the value the agreed digest commits to.  Against Fitzi-Hirt
    this succeeds whenever the collision is genuine; against the
    error-free algorithm the same behaviour is caught by the checking
    stage.
    """

    def __init__(self, faulty: Sequence[int], forged_value: int):
        super().__init__(faulty)
        self.forged_value = forged_value

    def delivery_value(self, pid: int, honest_value: int, view: GlobalView) -> int:
        """Value a faulty processor hands over in FH delivery (hook used by
        the baseline, not by Algorithm 1)."""
        return self.forged_value


class TrustPoisoningAdversary(Adversary):
    """Faulty processors lie in the diagnosis Trust vectors, accusing every
    fault-free member of P_match.

    This attacks line 3(e) directly: each false accusation removes an edge
    between the liar and an honest processor — a *bad* edge, so Lemma 4's
    soundness holds, and the over-degree rule (line 3(g)) isolates the
    liar after it has squandered t+1 edges.  The faulty also trigger the
    diagnosis stage by crying Detected whenever they sit outside P_match.
    """

    def detected_flag(self, pid, honest_flag, generation, view):
        return True

    def trust_vector(self, pid, honest_trust, generation, view):
        return {
            peer: False if peer not in self.faulty else flag
            for peer, flag in honest_trust.items()
        }


class StagedEquivocationAdversary(Adversary):
    """Faulty processors present codewords of a *different* value to a
    chosen subset of peers, with M flags doctored to match both stories.

    Unlike :class:`SymbolCorruptionAdversary` (which sends garbage), the
    symbols here lie on a genuine codeword of ``alt_value``, so the lie is
    self-consistent — the strongest form of equivocation.  The checking
    stage still catches it: n - t symbols cannot straddle two codewords
    without some fault-free outsider seeing an inconsistency.
    """

    def __init__(self, faulty: Sequence[int], deceived: Sequence[int],
                 alt_value: int):
        super().__init__(faulty)
        self.deceived = set(deceived)
        self.alt_value = alt_value

    def _alt_symbol(self, pid: int, generation: int, view: GlobalView):
        code = view.extras.get("code")
        parts_of = view.extras.get("parts_of")
        if code is None or parts_of is None:
            return None
        parts = parts_of(self.alt_value)
        return code.encode(parts[generation])[pid]

    def matching_symbol(self, pid, recipient, honest_symbol, generation, view):
        if recipient in self.deceived:
            alt = self._alt_symbol(pid, generation, view)
            if alt is not None:
                return alt
        return honest_symbol

    def m_vector(self, pid, honest_m, generation, view):
        # Claim to match everyone: the pairwise condition lets the lie
        # survive only where the counterpart also claims a match.
        return [True] * len(honest_m)
