"""Adaptive corruption: the adversary takes over processors mid-run.

The paper's model lets the adversary "take over up to t processors
(t < n/3) at any point during the algorithm".  Most attack strategies in
:mod:`repro.processors.byzantine` corrupt a fixed set from the start; this
module adds the adaptive envelope: a schedule maps generation numbers to
the processors corrupted *from that generation on*, and an inner strategy
decides what the corrupted processors do.

Because the engines ask ``adversary.controls(pid)`` at every emission
point, flipping a processor's status between generations is exactly the
paper's adaptive takeover: its past behaviour was honest, its future
behaviour is adversarial, and the total ever corrupted stays <= t.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set

from repro.processors.adversary import Adversary, GlobalView


class AdaptiveAdversary(Adversary):
    """Corruption schedule + inner behaviour strategy.

    ``schedule`` maps generation -> iterable of pids corrupted starting at
    that generation.  ``strategy`` is consulted for every hook once the
    acting pid is corrupted; it must be constructed over the *union* of all
    scheduled pids (its ``faulty`` set is overridden per call).

    The engine-facing ``faulty`` set is the union over the whole schedule
    (needed up front for the t-bound check and result bookkeeping: a
    processor that will ever be corrupted cannot be counted on as
    fault-free).  ``controls_at(pid, generation)`` exposes the time-aware
    view, and every generation-indexed hook honours it: before its
    corruption generation a scheduled processor behaves honestly.
    """

    def __init__(
        self,
        schedule: Dict[int, Sequence[int]],
        strategy: Optional[Adversary] = None,
    ):
        all_pids: Set[int] = set()
        for pids in schedule.values():
            all_pids.update(pids)
        super().__init__(sorted(all_pids))
        self.schedule = {
            generation: sorted(pids) for generation, pids in schedule.items()
        }
        self.strategy = strategy if strategy is not None else Adversary(
            sorted(all_pids)
        )
        self.strategy.faulty = set(all_pids)

    def corrupted_at(self, generation: int) -> Set[int]:
        """Processors under adversary control during ``generation``."""
        corrupted: Set[int] = set()
        for start, pids in self.schedule.items():
            if start <= generation:
                corrupted.update(pids)
        return corrupted

    def controls_at(self, pid: int, generation: int) -> bool:
        return pid in self.corrupted_at(generation)

    # -- generation-indexed hooks defer to the strategy only once the pid
    # -- is actually corrupted; otherwise honest passthrough.

    def matching_symbol(self, pid, recipient, honest_symbol, generation, view):
        if not self.controls_at(pid, generation):
            return honest_symbol
        return self.strategy.matching_symbol(
            pid, recipient, honest_symbol, generation, view
        )

    def m_vector(self, pid, honest_m, generation, view):
        if not self.controls_at(pid, generation):
            return honest_m
        return self.strategy.m_vector(pid, honest_m, generation, view)

    def detected_flag(self, pid, honest_flag, generation, view):
        if not self.controls_at(pid, generation):
            return honest_flag
        return self.strategy.detected_flag(pid, honest_flag, generation, view)

    def diagnosis_symbol(self, pid, honest_symbol, generation, view):
        if not self.controls_at(pid, generation):
            return honest_symbol
        return self.strategy.diagnosis_symbol(
            pid, honest_symbol, generation, view
        )

    def trust_vector(self, pid, honest_trust, generation, view):
        if not self.controls_at(pid, generation):
            return honest_trust
        return self.strategy.trust_vector(pid, honest_trust, generation, view)

    def source_symbol(self, source, recipient, honest_symbol, generation, view):
        if not self.controls_at(source, generation):
            return honest_symbol
        return self.strategy.source_symbol(
            source, recipient, honest_symbol, generation, view
        )

    def forwarded_symbol(self, pid, recipient, honest_symbol, generation, view):
        if not self.controls_at(pid, generation):
            return honest_symbol
        return self.strategy.forwarded_symbol(
            pid, recipient, honest_symbol, generation, view
        )

    def source_codeword(self, source, honest_codeword, generation, view):
        if not self.controls_at(source, generation):
            return list(honest_codeword)
        return self.strategy.source_codeword(
            source, honest_codeword, generation, view
        )

    # -- broadcast-internal hooks have no generation index; the engines
    # -- only call them for pids in ``faulty``, so route through the
    # -- current generation recorded in the view extras when available.

    def _generation_from(self, view: GlobalView) -> Optional[int]:
        return view.extras.get("generation")

    def bsb_source_bit(self, source, recipient, honest_bit, instance, view):
        generation = self._generation_from(view)
        if generation is not None and not self.controls_at(source, generation):
            return honest_bit
        return self.strategy.bsb_source_bit(
            source, recipient, honest_bit, instance, view
        )

    def ideal_broadcast_bit(self, source, honest_bit, instance, view):
        generation = self._generation_from(view)
        if generation is not None and not self.controls_at(source, generation):
            return honest_bit
        return self.strategy.ideal_broadcast_bit(
            source, honest_bit, instance, view
        )

    def king_value(self, pid, recipient, phase, honest_value, instance, view):
        generation = self._generation_from(view)
        if generation is not None and not self.controls_at(pid, generation):
            return honest_value
        return self.strategy.king_value(
            pid, recipient, phase, honest_value, instance, view
        )

    def king_proposal(self, pid, recipient, phase, honest_proposal, instance,
                      view):
        generation = self._generation_from(view)
        if generation is not None and not self.controls_at(pid, generation):
            return honest_proposal
        return self.strategy.king_proposal(
            pid, recipient, phase, honest_proposal, instance, view
        )

    def king_bit(self, pid, recipient, phase, honest_bit, instance, view):
        generation = self._generation_from(view)
        if generation is not None and not self.controls_at(pid, generation):
            return honest_bit
        return self.strategy.king_bit(
            pid, recipient, phase, honest_bit, instance, view
        )

    def eig_relay(self, pid, recipient, path, honest_value, instance, view):
        generation = self._generation_from(view)
        if generation is not None and not self.controls_at(pid, generation):
            return honest_value
        return self.strategy.eig_relay(
            pid, recipient, path, honest_value, instance, view
        )
