"""Composite adversary: different strategies for different faulty pids.

Real Byzantine coalitions are heterogeneous — one member equivocates, one
stays silent, one cries wolf.  ``CompositeAdversary`` routes every hook to
the strategy that owns the acting processor, letting tests and benchmarks
combine the attack library arbitrarily while keeping the total corrupted
set within the ``t`` budget.
"""

from __future__ import annotations

from typing import Dict

from repro.processors.adversary import Adversary

#: Hooks whose first argument is the acting processor id.
_ROUTED_HOOKS = (
    "input_value",
    "matching_symbol",
    "m_vector",
    "detected_flag",
    "diagnosis_symbol",
    "trust_vector",
    "bsb_source_bit",
    "ideal_broadcast_bit",
    "king_value",
    "king_proposal",
    "king_bit",
    "eig_relay",
    "source_symbol",
    "forwarded_symbol",
    "source_codeword",
)


class CompositeAdversary(Adversary):
    """Route hooks to per-pid strategies.

    >>> from repro.processors import CrashAdversary, FalseDetectionAdversary
    >>> adversary = CompositeAdversary({
    ...     5: CrashAdversary([5]),
    ...     6: FalseDetectionAdversary([6]),
    ... })
    >>> sorted(adversary.faulty)
    [5, 6]
    """

    def __init__(self, strategies: Dict[int, Adversary]):
        super().__init__(sorted(strategies))
        self.strategies = dict(strategies)
        for pid, strategy in self.strategies.items():
            if pid not in strategy.faulty:
                strategy.faulty.add(pid)

    def _route(self, hook: str, pid: int, args, kwargs):
        strategy = self.strategies.get(pid)
        if strategy is None:
            # Not one of ours: honest passthrough via the base class.
            return getattr(Adversary, hook)(self, pid, *args, **kwargs)
        return getattr(strategy, hook)(pid, *args, **kwargs)


def _make_router(hook: str):
    def routed(self, pid, *args, **kwargs):
        return self._route(hook, pid, args, kwargs)

    routed.__name__ = hook
    routed.__doc__ = "Routed to the strategy owning the acting pid."
    return routed


for _hook in _ROUTED_HOOKS:
    setattr(CompositeAdversary, _hook, _make_router(_hook))
