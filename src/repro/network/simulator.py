"""Round-based synchronous network.

Messages buffered with :meth:`SyncNetwork.send` during a round are delivered
together by :meth:`SyncNetwork.deliver`, which advances the round counter —
the standard lockstep synchronous model of the paper.  By default the
network never drops, duplicates, reorders within a (sender, receiver)
pair, or forges messages; Byzantine behaviour lives entirely in *what*
faulty processors choose to send (see :mod:`repro.processors.byzantine`),
not in the network.  Timing faults are opt-in: a compiled
:class:`repro.faults.FaultSchedule` installed with
:meth:`SyncNetwork.install_faults` may omit, delay (to a later round),
or duplicate individual edges — deterministically, from a seed — with
every decision journalled for audit replay (see ``docs/FAULTS.md``).

Two delivery granularities coexist:

* the scalar path — :meth:`SyncNetwork.send` one :class:`Message` per
  edge, :meth:`SyncNetwork.deliver` per-receiver inboxes — kept for
  tests, journals and adversarial paths;
* the vectorized path — :meth:`SyncNetwork.send_many` one
  :class:`SymbolBatch` (parallel sender/receiver/payload arrays) per
  ``(tag, round)``, :meth:`SyncNetwork.deliver_arrays` the batches
  untouched — which moves no per-edge Python objects at all.

Both paths share the round clock, the duplicate-detection bookkeeping and
the :class:`BitMeter`, and their accounting is byte-identical: a batch of
``m`` messages of ``b`` bits meters exactly like ``m`` scalar sends of
``b`` bits.  Mixing the two in one round is allowed; ``deliver`` always
reports everything (materializing batches into messages), while
``deliver_arrays`` keeps batches as arrays and only materializes for the
journal.

A third, traffic-free granularity serves the cross-generation fast path:
:meth:`SyncNetwork.charge_round` accounts a full round's bits/messages
and advances the round clock without materializing anything — the
bookkeeping-only replay of a round whose delivered payloads are known
never to be read (see ``docs/ARCHITECTURE.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.network.message import Message, SymbolBatch
from repro.network.metrics import BitMeter


class NetworkError(RuntimeError):
    """Raised on misuse of the simulator (bad pid, self-send, duplicates)."""


class FaultInjectionError(NetworkError):
    """A fault-injection site was misused; carries round + edge context.

    Every error raised at an injection point (an invalid schedule
    decision, a conflicting install, accounting shortcuts that cannot
    coexist with injected faults) is typed, so drivers can distinguish
    "the fault layer is misconfigured" from plain simulator misuse — and
    the message always names the round and, when one exists, the edge.
    """

    def __init__(
        self,
        reason: str,
        round_index: int,
        sender: Optional[int] = None,
        receiver: Optional[int] = None,
        kind: Optional[str] = None,
    ):
        edge = (
            " on edge %s->%s" % (sender, receiver)
            if sender is not None or receiver is not None
            else ""
        )
        fault = " (fault kind %r)" % kind if kind is not None else ""
        super().__init__(
            "%s in round %d%s%s" % (reason, round_index, edge, fault)
        )
        self.reason = reason
        self.round_index = round_index
        self.sender = sender
        self.receiver = receiver
        self.kind = kind


@dataclass
class RoundDelivery:
    """Everything delivered at the end of one round, arrays kept as arrays.

    ``inboxes`` holds the round's *scalar* messages exactly as
    :meth:`SyncNetwork.deliver` would report them; ``batches`` holds the
    round's :class:`SymbolBatch` objects in send order, unmaterialized.
    """

    round_index: int
    inboxes: Dict[int, List[Message]]
    batches: List[SymbolBatch] = field(default_factory=list)


class SyncNetwork:
    """A synchronous, fully connected network of ``n`` processors.

    >>> net = SyncNetwork(3)
    >>> net.send(0, 1, payload=1, bits=1, tag="demo")
    >>> inboxes = net.deliver()
    >>> inboxes[1][0].payload
    1
    >>> net.meter.total_bits
    1
    """

    def __init__(
        self,
        n: int,
        meter: Optional[BitMeter] = None,
        journal: bool = False,
    ):
        if n < 1:
            raise ValueError("n must be positive, got %d" % n)
        self.n = n
        self.meter = meter if meter is not None else BitMeter()
        self.round_index = 0
        self._pending: List[Message] = []
        self._pending_batches: List[SymbolBatch] = []
        self._sent_this_round: Dict[tuple, bool] = {}
        #: packed (sender * n + receiver) edge ids per tag, covering the
        #: round's batched sends — the duplicate check the scalar path and
        #: later batches test against.  A set, so the adversarial paths'
        #: per-edge scalar sends check in O(1) instead of scanning batch
        #: arrays.
        self._batch_edges: Dict[str, set] = {}
        #: When journalling, every delivered message is retained here in
        #: delivery order — an execution trace for debugging and audits.
        #: Batched sends are materialized into the journal so the trace is
        #: identical whichever path produced the traffic.
        self.journal: Optional[List[Message]] = [] if journal else None
        #: Installed fault schedule (see repro.faults), or None for the
        #: fault-free network.  Duck-typed: anything with a
        #: ``decide(round_index, sender, receiver, tag)`` method returning
        #: a decision with ``kind``/``delay``/``copies`` fields works.
        self.fault_schedule = None
        #: Delayed messages keyed by the *absolute* round index in which
        #: they will be delivered; each keeps the round_index it was sent
        #: in, so journals and audits can see the displacement.
        self._delayed: Dict[int, List[Message]] = {}

    def install_faults(self, schedule) -> None:
        """Install a compiled fault schedule on this network.

        Every subsequent :meth:`send`/:meth:`send_many` edge is routed
        through ``schedule.decide``; the schedule must be installed while
        the network is quiet (no buffered traffic) and at most once.
        """
        if self.fault_schedule is not None:
            raise FaultInjectionError(
                "a fault schedule is already installed", self.round_index
            )
        if self._pending or self._pending_batches:
            raise FaultInjectionError(
                "cannot install a fault schedule with traffic buffered",
                self.round_index,
            )
        self.fault_schedule = schedule

    def _check_pid(self, pid: int) -> None:
        if not 0 <= pid < self.n:
            raise NetworkError("processor id %d out of range [0, %d)" % (pid, self.n))

    def send(
        self, sender: int, receiver: int, payload: Any, bits: int, tag: str
    ) -> None:
        """Buffer one message for delivery at the end of the current round.

        At most one message per (sender, receiver, tag) per round — the
        protocols here never need more, and the restriction catches
        orchestration bugs early.
        """
        self._check_pid(sender)
        self._check_pid(receiver)
        if sender == receiver:
            raise NetworkError(
                "self-send: processor %d to itself in round %d"
                % (sender, self.round_index)
            )
        key = (sender, receiver, tag)
        if key in self._sent_this_round or self._edge_in_batches(
            tag, sender, receiver
        ):
            raise NetworkError(
                "duplicate message %r in round %d" % (key, self.round_index)
            )
        self._sent_this_round[key] = True
        message = Message(
            sender=sender,
            receiver=receiver,
            payload=payload,
            bits=bits,
            tag=tag,
            round_index=self.round_index,
        )
        if self.fault_schedule is not None:
            decision = self.fault_schedule.decide(
                self.round_index, sender, receiver, tag
            )
            if decision.kind != "pass":
                self._apply_fault(message, decision)
                return
        self.meter.add(tag, bits)
        self._pending.append(message)

    def _apply_fault(self, message: Message, decision) -> None:
        """Route one scalar message according to a non-pass decision.

        Metering is always "sender pays": an omitted or delayed message
        is charged in the round it was *sent*, exactly as if it had gone
        through, so the cost model observed by the meter is independent
        of what the network did to the traffic.
        """
        kind = decision.kind
        if kind == "omit":
            self.meter.add(message.tag, message.bits)
        elif kind == "delay":
            delay = int(decision.delay)
            if delay < 1:
                raise FaultInjectionError(
                    "delay fault needs delay >= 1, got %d" % delay,
                    self.round_index,
                    message.sender,
                    message.receiver,
                    kind,
                )
            self.meter.add(message.tag, message.bits)
            self._delayed.setdefault(
                self.round_index + delay, []
            ).append(message)
        elif kind == "duplicate":
            copies = int(decision.copies)
            if copies < 1:
                raise FaultInjectionError(
                    "duplicate fault needs copies >= 1, got %d" % copies,
                    self.round_index,
                    message.sender,
                    message.receiver,
                    kind,
                )
            self.meter.add(
                message.tag,
                message.bits * (1 + copies),
                messages=1 + copies,
            )
            for _ in range(1 + copies):
                self._pending.append(message)
        else:
            raise FaultInjectionError(
                "unknown fault kind %r" % kind,
                self.round_index,
                message.sender,
                message.receiver,
                kind,
            )

    def _edge_in_batches(self, tag: str, sender: int, receiver: int) -> bool:
        edges = self._batch_edges.get(tag)
        return edges is not None and sender * self.n + receiver in edges

    def send_many(
        self,
        senders: Sequence[int],
        receivers: Sequence[int],
        payloads: Sequence[Any],
        bits: int,
        tag: str,
    ) -> None:
        """Buffer one message per ``(senders[i], receivers[i])`` edge.

        The batched equivalent of ``len(senders)`` :meth:`send` calls of
        ``bits`` bits each under ``tag`` — same validation (pid ranges,
        no self-sends, at most one message per (sender, receiver, tag)
        per round, including against scalar sends), same metering totals
        — without constructing any per-edge :class:`Message` objects.

        Args:
            senders: 1-d array/sequence of sender pids.
            receivers: matching 1-d array/sequence of receiver pids.
            payloads: one payload per edge; an integer ndarray is kept
                as the batch's packed payload lane (symbols wider than
                an int64 lane stay Python-int lists; scalar consumers
                read either form through
                :meth:`~repro.network.message.SymbolBatch.payload_list`,
                which restores exact Python ints).
            bits: metered width of every message in the batch.
            tag: hierarchical meter tag.

        Metering invariant: one accounting entry with the batch totals,
        byte-identical ``Counter`` state to the per-edge scalar sends it
        replaces.  Raises :class:`NetworkError` on any validation
        failure (the whole batch is rejected, nothing is buffered).
        """
        senders = np.asarray(senders, dtype=np.int64)
        receivers = np.asarray(receivers, dtype=np.int64)
        if senders.shape != receivers.shape or senders.ndim != 1:
            raise NetworkError(
                "senders/receivers must be equal-length 1-d arrays, got "
                "%r and %r" % (senders.shape, receivers.shape)
            )
        if len(payloads) != senders.shape[0]:
            raise NetworkError(
                "payload count %d does not match edge count %d"
                % (len(payloads), senders.shape[0])
            )
        if bits < 0:
            raise ValueError("bits must be non-negative, got %d" % bits)
        count = senders.shape[0]
        if count == 0:
            return
        if (senders < 0).any() or (senders >= self.n).any() or (
            (receivers < 0).any() or (receivers >= self.n).any()
        ):
            bad = senders[(senders < 0) | (senders >= self.n)]
            if bad.shape[0] == 0:
                bad = receivers[(receivers < 0) | (receivers >= self.n)]
            raise NetworkError(
                "processor id %d out of range [0, %d)" % (int(bad[0]), self.n)
            )
        self_mask = senders == receivers
        if self_mask.any():
            raise NetworkError(
                "self-send: processor %d to itself in round %d"
                % (int(senders[self_mask][0]), self.round_index)
            )
        packed = senders * self.n + receivers
        unique = np.unique(packed)
        duplicate = None
        if unique.shape[0] != count:
            # Intra-batch duplicate: find one for the error message.
            order = np.argsort(packed, kind="stable")
            repeats = np.flatnonzero(np.diff(packed[order]) == 0)
            duplicate = int(packed[order][repeats[0]])
        else:
            existing = self._batch_edges.get(tag)
            if existing:
                for edge in unique.tolist():
                    if edge in existing:
                        duplicate = edge
                        break
            if duplicate is None and self._sent_this_round:
                for sender, receiver, sent_tag in self._sent_this_round:
                    if sent_tag == tag and (
                        sender * self.n + receiver == packed
                    ).any():
                        duplicate = sender * self.n + receiver
                        break
        if duplicate is not None:
            key = (duplicate // self.n, duplicate % self.n, tag)
            raise NetworkError(
                "duplicate message %r in round %d" % (key, self.round_index)
            )
        self._batch_edges.setdefault(tag, set()).update(unique.tolist())
        if self.fault_schedule is not None:
            decisions = [
                self.fault_schedule.decide(self.round_index, s, r, tag)
                for s, r in zip(senders.tolist(), receivers.tolist())
            ]
            if any(d.kind != "pass" for d in decisions):
                self._send_many_faulted(
                    senders, receivers, payloads, bits, tag, decisions
                )
                return
        self._buffer_batch(senders, receivers, payloads, bits, tag)

    def _buffer_batch(self, senders, receivers, payloads, bits, tag) -> None:
        # Carrier form: an integer ndarray stays a packed payload lane
        # (scalar consumers normalize through SymbolBatch.payload_list,
        # so np.int64 never leaks to receiver-side validation); object
        # or bool dtypes fall back to the scalar list form.  A lane that
        # is a view of a caller-owned buffer (an arena slice) is copied —
        # the buffer may be reset before the batch is consumed.
        count = senders.shape[0]
        if isinstance(payloads, np.ndarray):
            if payloads.dtype == object or payloads.dtype == np.bool_:
                payloads = payloads.tolist()
            elif payloads.base is not None or not payloads.flags.owndata:
                payloads = payloads.copy()
        else:
            payloads = list(payloads)
        batch = SymbolBatch(
            tag=tag,
            senders=senders,
            receivers=receivers,
            payloads=payloads,
            bits=bits,
            round_index=self.round_index,
        )
        # One accounting entry with the batch totals — byte-identical to
        # `count` scalar sends of `bits` bits (Counter sums are equal).
        self.meter.add(tag, bits * count, messages=count)
        self._pending_batches.append(batch)

    def _send_many_faulted(
        self, senders, receivers, payloads, bits, tag, decisions
    ) -> None:
        """Split a batch whose edges drew at least one non-pass decision.

        Edges that pass stay batched (one :class:`SymbolBatch`, one meter
        entry, untouched carrier lane); every faulted edge is
        materialized into a scalar :class:`Message` and routed through
        :meth:`_apply_fault`, in edge order, so the journal and meter are
        deterministic functions of (traffic, schedule).
        """
        is_array = isinstance(payloads, np.ndarray)
        pass_idx = [
            i for i, decision in enumerate(decisions)
            if decision.kind == "pass"
        ]
        if pass_idx:
            keep = np.asarray(pass_idx, dtype=np.int64)
            kept_payloads = (
                payloads[keep] if is_array
                else [payloads[i] for i in pass_idx]
            )
            self._buffer_batch(
                senders[keep], receivers[keep], kept_payloads, bits, tag
            )
        for i, decision in enumerate(decisions):
            if decision.kind == "pass":
                continue
            payload = payloads[i]
            if is_array:
                payload = payload.item()
            message = Message(
                sender=int(senders[i]),
                receiver=int(receivers[i]),
                payload=payload,
                bits=bits,
                tag=tag,
                round_index=self.round_index,
            )
            self._apply_fault(message, decision)

    def _materialize_pending_batches(self) -> List[Message]:
        messages: List[Message] = []
        for batch in self._pending_batches:
            messages.extend(batch.materialize())
        return messages

    def _end_round(self) -> None:
        self._pending = []
        self._pending_batches = []
        self._sent_this_round = {}
        self._batch_edges = {}
        self.round_index += 1

    def _journal_round(self, messages: List[Message]) -> None:
        if self.journal is not None:
            self.journal.extend(
                sorted(messages, key=lambda m: (m.receiver, m.sender, m.tag))
            )

    def charge_round(self, tag: str, count: int, bits: int) -> None:
        """Account one full round of ``count`` messages of ``bits`` bits
        each and advance the round clock, without materializing any
        traffic.

        The bookkeeping equivalent of :meth:`send_many` over ``count``
        edges followed by :meth:`deliver_arrays` with the delivery
        discarded: meter ``Counter`` state and the round clock end up
        byte-identical.  This is the cross-generation fast path's unit —
        replaying a failure-free generation whose delivered payloads are
        known never to be read (every all-match generation decides from
        its own input part, not from decoded traffic).

        Refuses to run when scalar or batched traffic is already
        buffered in the current round (the caller would silently swallow
        it) or when journalling is on (the journal must see materialized
        messages, so such networks take the real send path).

        >>> net = SyncNetwork(3)
        >>> net.charge_round("replay", count=6, bits=4)
        >>> net.meter.total_bits, net.round_index
        (24, 1)
        """
        if count < 0:
            raise ValueError("count must be non-negative, got %d" % count)
        if bits < 0:
            raise ValueError("bits must be non-negative, got %d" % bits)
        if self._pending or self._pending_batches:
            raise NetworkError(
                "charge_round with traffic buffered in round %d"
                % self.round_index
            )
        if self.fault_schedule is not None:
            raise FaultInjectionError(
                "charge_round under an installed fault schedule: "
                "injected faults require materialized traffic",
                self.round_index,
            )
        if self.journal is not None:
            raise NetworkError(
                "charge_round on a journalling network: the journal "
                "must observe materialized messages"
            )
        if count:
            # A zero-edge round must not touch the meter: the real path
            # (send_many of zero edges + deliver) records nothing, and a
            # Counter entry of 0 bits would still show up in snapshots.
            self.meter.add(tag, bits * count, messages=count)
        self._end_round()

    def deliver(self) -> Dict[int, List[Message]]:
        """End the round: deliver all buffered messages, keyed by receiver.

        Every processor appears in the result (possibly with an empty
        inbox), and each inbox is sorted by sender for determinism.
        Batched sends are materialized into scalar messages here, so
        legacy callers observe identical traffic whichever send path
        produced it.
        """
        delivered = self._pending + self._materialize_pending_batches()
        if self._delayed:
            # Messages a delay fault carried into this round; each keeps
            # the round_index it was sent in.
            delivered = delivered + self._delayed.pop(self.round_index, [])
        inboxes: Dict[int, List[Message]] = {pid: [] for pid in range(self.n)}
        for message in delivered:
            inboxes[message.receiver].append(message)
        for inbox in inboxes.values():
            inbox.sort(key=lambda m: (m.sender, m.tag))
        self._journal_round(delivered)
        self._end_round()
        return inboxes

    def deliver_arrays(self) -> RoundDelivery:
        """End the round without materializing batches.

        Scalar sends come back as per-receiver inboxes (exactly as
        :meth:`deliver` reports them); batched sends come back as the
        :class:`SymbolBatch` objects in send order.  When journalling is
        on, batches *are* materialized — into the journal only — so the
        trace stays identical to the scalar path's.
        """
        inboxes: Dict[int, List[Message]] = {pid: [] for pid in range(self.n)}
        scalar = self._pending
        if self._delayed:
            scalar = scalar + self._delayed.pop(self.round_index, [])
        for message in scalar:
            inboxes[message.receiver].append(message)
        for inbox in inboxes.values():
            inbox.sort(key=lambda m: (m.sender, m.tag))
        batches = list(self._pending_batches)
        if self.journal is not None:
            self._journal_round(
                scalar + self._materialize_pending_batches()
            )
        delivery = RoundDelivery(
            round_index=self.round_index, inboxes=inboxes, batches=batches
        )
        self._end_round()
        return delivery
