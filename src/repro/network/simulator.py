"""Round-based synchronous network.

Messages buffered with :meth:`SyncNetwork.send` during a round are delivered
together by :meth:`SyncNetwork.deliver`, which advances the round counter —
the standard lockstep synchronous model of the paper.  The network never
drops, duplicates, reorders within a (sender, receiver) pair, or forges
messages; Byzantine behaviour lives entirely in *what* faulty processors
choose to send (see :mod:`repro.processors.byzantine`), not in the network.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.network.message import Message
from repro.network.metrics import BitMeter


class NetworkError(RuntimeError):
    """Raised on misuse of the simulator (bad pid, send after shutdown)."""


class SyncNetwork:
    """A synchronous, fully connected network of ``n`` processors.

    >>> net = SyncNetwork(3)
    >>> net.send(0, 1, payload=1, bits=1, tag="demo")
    >>> inboxes = net.deliver()
    >>> inboxes[1][0].payload
    1
    >>> net.meter.total_bits
    1
    """

    def __init__(
        self,
        n: int,
        meter: Optional[BitMeter] = None,
        journal: bool = False,
    ):
        if n < 1:
            raise ValueError("n must be positive, got %d" % n)
        self.n = n
        self.meter = meter if meter is not None else BitMeter()
        self.round_index = 0
        self._pending: List[Message] = []
        self._sent_this_round: Dict[tuple, bool] = {}
        #: When journalling, every delivered message is retained here in
        #: delivery order — an execution trace for debugging and audits.
        self.journal: Optional[List[Message]] = [] if journal else None

    def _check_pid(self, pid: int) -> None:
        if not 0 <= pid < self.n:
            raise NetworkError("processor id %d out of range [0, %d)" % (pid, self.n))

    def send(
        self, sender: int, receiver: int, payload: Any, bits: int, tag: str
    ) -> None:
        """Buffer one message for delivery at the end of the current round.

        At most one message per (sender, receiver, tag) per round — the
        protocols here never need more, and the restriction catches
        orchestration bugs early.
        """
        self._check_pid(sender)
        self._check_pid(receiver)
        key = (sender, receiver, tag)
        if key in self._sent_this_round:
            raise NetworkError(
                "duplicate message %r in round %d" % (key, self.round_index)
            )
        self._sent_this_round[key] = True
        message = Message(
            sender=sender,
            receiver=receiver,
            payload=payload,
            bits=bits,
            tag=tag,
            round_index=self.round_index,
        )
        self.meter.add(tag, bits)
        self._pending.append(message)

    def deliver(self) -> Dict[int, List[Message]]:
        """End the round: deliver all buffered messages, keyed by receiver.

        Every processor appears in the result (possibly with an empty
        inbox), and each inbox is sorted by sender for determinism.
        """
        inboxes: Dict[int, List[Message]] = {pid: [] for pid in range(self.n)}
        for message in self._pending:
            inboxes[message.receiver].append(message)
        for inbox in inboxes.values():
            inbox.sort(key=lambda m: (m.sender, m.tag))
        if self.journal is not None:
            self.journal.extend(
                sorted(
                    self._pending,
                    key=lambda m: (m.receiver, m.sender, m.tag),
                )
            )
        self._pending = []
        self._sent_this_round = {}
        self.round_index += 1
        return inboxes
