"""Bit accounting for communication-complexity measurements.

Every benchmark in this repository is ultimately a statement about bits
sent, so metering is exact (integer bits, no sampling) and structured:
counters are keyed by a hierarchical dot-separated tag such as
``"gen3.matching.symbols"`` or ``"gen3.matching.M.bsb"``, and can be
aggregated by prefix.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple


@dataclass(frozen=True)
class MeterSnapshot:
    """Immutable point-in-time view of a :class:`BitMeter`."""

    bits_by_tag: Dict[str, int]
    messages_by_tag: Dict[str, int]

    @property
    def total_bits(self) -> int:
        return sum(self.bits_by_tag.values())

    @property
    def total_messages(self) -> int:
        return sum(self.messages_by_tag.values())

    def bits_with_prefix(self, prefix: str) -> int:
        """Sum of bits over all tags equal to or nested under ``prefix``."""
        return sum(
            bits
            for tag, bits in self.bits_by_tag.items()
            if tag == prefix or tag.startswith(prefix + ".")
        )

    def diff(self, earlier: "MeterSnapshot") -> "MeterSnapshot":
        """Bits/messages accumulated since ``earlier``.

        Deltas can be negative — e.g. diffing across a
        :meth:`BitMeter.reset` — and tags present only in ``earlier``
        are reported with their (negative) delta rather than dropped, so
        a diff never silently hides traffic that disappeared.
        """

        def deltas(now: Dict[str, int], before: Dict[str, int]) -> Dict[str, int]:
            return {
                tag: now.get(tag, 0) - before.get(tag, 0)
                for tag in set(now) | set(before)
                if now.get(tag, 0) != before.get(tag, 0)
            }

        return MeterSnapshot(
            bits_by_tag=deltas(self.bits_by_tag, earlier.bits_by_tag),
            messages_by_tag=deltas(
                self.messages_by_tag, earlier.messages_by_tag
            ),
        )


@dataclass
class BitMeter:
    """Mutable accumulator of transmitted bits and message counts."""

    _bits: Counter = field(default_factory=Counter)
    _messages: Counter = field(default_factory=Counter)

    def add(self, tag: str, bits: int, messages: int = 1) -> None:
        """Record ``bits`` transmitted under ``tag``."""
        if bits < 0:
            raise ValueError("bits must be non-negative, got %d" % bits)
        if messages < 0:
            raise ValueError("messages must be non-negative, got %d" % messages)
        self._bits[tag] += bits
        self._messages[tag] += messages

    @property
    def total_bits(self) -> int:
        return sum(self._bits.values())

    @property
    def total_messages(self) -> int:
        return sum(self._messages.values())

    def bits_for(self, tag: str) -> int:
        """Bits recorded under exactly ``tag``."""
        return self._bits[tag]

    def bits_with_prefix(self, prefix: str) -> int:
        """Bits under ``prefix`` or any nested tag."""
        return sum(
            bits
            for tag, bits in self._bits.items()
            if tag == prefix or tag.startswith(prefix + ".")
        )

    def tags(self) -> Iterator[str]:
        return iter(sorted(self._bits))

    def snapshot(self) -> MeterSnapshot:
        return MeterSnapshot(
            bits_by_tag=dict(self._bits),
            messages_by_tag=dict(self._messages),
        )

    def reset(self) -> None:
        self._bits.clear()
        self._messages.clear()

    def items(self) -> Iterator[Tuple[str, int]]:
        """(tag, bits) pairs in sorted tag order."""
        return iter(sorted(self._bits.items()))
