"""Message record for the synchronous simulator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Message:
    """One message on a directed point-to-point channel.

    The receiver can rely on ``sender`` being authentic: the paper's model
    states that a message received on a channel is known to come from the
    processor at the other end.  ``bits`` is the accounted size — the number
    of bits this message contributes to communication complexity — which is
    fixed by the protocol step, never by the (possibly Byzantine) payload.
    """

    sender: int
    receiver: int
    payload: Any
    bits: int
    tag: str
    round_index: int = -1

    def __post_init__(self) -> None:
        if self.sender == self.receiver:
            raise ValueError("no self-channels: sender == receiver == %d" % self.sender)
        if self.bits < 0:
            raise ValueError("bits must be non-negative, got %d" % self.bits)
