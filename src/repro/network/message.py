"""Message records for the synchronous simulator.

Two granularities share the same on-wire semantics:

* :class:`Message` — one payload on one directed channel (the scalar
  unit of the simulator's original API, still used by tests, journals
  and adversarial paths);
* :class:`SymbolBatch` — every payload sent under one ``(tag, round)``
  as parallel sender/receiver/payload arrays, the unit of the
  vectorized :meth:`~repro.network.simulator.SyncNetwork.send_many`
  path.  A batch can always be :meth:`~SymbolBatch.materialize`-d back
  into the equivalent list of :class:`Message` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence

import numpy as np


@dataclass(frozen=True)
class Message:
    """One message on a directed point-to-point channel.

    The receiver can rely on ``sender`` being authentic: the paper's model
    states that a message received on a channel is known to come from the
    processor at the other end.  ``bits`` is the accounted size — the number
    of bits this message contributes to communication complexity — which is
    fixed by the protocol step, never by the (possibly Byzantine) payload.
    """

    sender: int
    receiver: int
    payload: Any
    bits: int
    tag: str
    round_index: int = -1

    def __post_init__(self) -> None:
        if self.sender == self.receiver:
            raise ValueError("no self-channels: sender == receiver == %d" % self.sender)
        if self.bits < 0:
            raise ValueError("bits must be non-negative, got %d" % self.bits)


@dataclass(frozen=True)
class SymbolBatch:
    """All messages of one ``(tag, round)`` as parallel edge arrays.

    ``senders`` and ``receivers`` are equal-length int arrays;
    ``payloads`` is the aligned payload sequence in one of two carrier
    forms:

    * a Python list of exact scalars (the scalar-compatible form, and
      the only form for payloads wider than an int64 lane);
    * a 1-D integer ndarray — the *packed payload lane* of the
      vectorized data plane, which moves no per-edge Python objects.

    Scalar consumers must go through :meth:`payload_list`, which
    normalizes either form to Python scalars (receivers' exact-type
    payload validation must never see ``np.int64``); vectorized
    consumers take :meth:`payload_lanes` and skip the materialization
    entirely.  ``bits`` is the accounted size *per message* — every
    message in a batch is the same protocol step, so all carry the same
    bit count, and the batch meters ``bits * len`` in one accounting
    entry regardless of carrier form.
    """

    tag: str
    senders: np.ndarray
    receivers: np.ndarray
    payloads: Sequence[Any]
    bits: int
    round_index: int = -1

    def __post_init__(self) -> None:
        if self.bits < 0:
            raise ValueError("bits must be non-negative, got %d" % self.bits)
        if not (
            len(self.senders) == len(self.receivers) == len(self.payloads)
        ):
            raise ValueError(
                "batch arrays disagree on length: %d senders, %d "
                "receivers, %d payloads"
                % (len(self.senders), len(self.receivers), len(self.payloads))
            )

    def __len__(self) -> int:
        return len(self.senders)

    def payload_list(self) -> List[Any]:
        """The payloads as Python scalars, whatever the carrier form.

        The scalar consumers' accessor: ``tolist()`` converts lane
        elements to exact ints, so the downstream exact-type symbol
        validation behaves identically to the scalar send path.
        """
        payloads = self.payloads
        if isinstance(payloads, np.ndarray):
            return payloads.tolist()
        return list(payloads)

    def payload_lanes(self, dtype) -> np.ndarray:
        """The payloads as a 1-D array of ``dtype`` — zero-copy when the
        batch already carries a matching lane."""
        payloads = self.payloads
        if isinstance(payloads, np.ndarray):
            return payloads.astype(dtype, copy=False)
        return np.array(payloads, dtype=dtype)

    def materialize(self) -> List[Message]:
        """The batch as scalar :class:`Message` objects (journal order is
        the caller's concern; this preserves batch order)."""
        return [
            Message(
                sender=int(sender),
                receiver=int(receiver),
                payload=payload,
                bits=self.bits,
                tag=self.tag,
                round_index=self.round_index,
            )
            for sender, receiver, payload in zip(
                self.senders.tolist(),
                self.receivers.tolist(),
                self.payload_list(),
            )
        ]
