"""Synchronous point-to-point network simulator with exact bit accounting.

The paper's model is a synchronous, fully connected network of ``n``
processors with directed point-to-point channels and common knowledge of
processor identities.  Communication complexity — the quantity every claim
in the paper is about — is the total number of bits transmitted by all
processors.  The simulator therefore meters every message at send time,
tagged by protocol stage, so measured totals can be reconciled against the
paper's closed-form expressions (see :mod:`repro.analysis.complexity`).
"""

from repro.network.message import Message, SymbolBatch
from repro.network.metrics import BitMeter, MeterSnapshot
from repro.network.simulator import NetworkError, RoundDelivery, SyncNetwork

__all__ = [
    "Message",
    "SymbolBatch",
    "BitMeter",
    "MeterSnapshot",
    "SyncNetwork",
    "RoundDelivery",
    "NetworkError",
]
