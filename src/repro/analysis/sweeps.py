"""Parameter-sweep drivers shared by the CLI and the benchmark harness.

Each sweep runs the real protocol (never just the formulas), collects
exact bit counts, and returns plain dataclass rows, so callers can print,
plot or assert over them without re-running simulations.

Fault-injection sweeps (:func:`sweep_faults`) run the same grids under a
named attack from the canonical registry
(:data:`repro.processors.ATTACKS`) so the same attack name scales from
``n = 4`` to the large-n regime (31/63/127) the vectorized adversarial
path and its grouped diagnosis broadcasts make practical; the default
sweep set is the pinned
:data:`repro.processors.FAULT_GRID_ATTACKS` grid the tracked benchmark
bit tables are keyed to.  Faulty pids default to the registry's
attack-specific choices, picked so the attack actually bites (see
:mod:`repro.processors.registry`).

This module's own ``ATTACKS``/``make_attack`` names are deprecated
import shims for that registry, kept for callers of the pre-service
API.

Every sweep consumes :class:`repro.service.RunSpec` — the one
declarative run description shared with the CLI and the benchmarks —
and runs through a :class:`repro.service.ConsensusService`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.analysis.complexity import (
    checking_stage_bits,
    leading_term_per_bit,
    matching_stage_bits,
)
from repro.broadcast_bit.ideal import default_b
from repro.processors.adversary import Adversary
from repro.processors.registry import FAULT_GRID_ATTACKS
from repro.processors.registry import make_attack as _make_attack
from repro.service.service import ConsensusService
from repro.service.spec import RunSpec


@dataclass(frozen=True)
class SweepPoint:
    """One measured point of an L- or n-sweep."""

    n: int
    t: int
    l_bits: int
    d_bits: int
    generations: int
    total_bits: int
    analytic_bits: float
    per_bit: float
    asymptote: float

    @property
    def ratio_to_analytic(self) -> float:
        return self.total_bits / self.analytic_bits

    @property
    def ratio_to_asymptote(self) -> float:
        return self.per_bit / self.asymptote


def _run_point(
    n: int,
    t: int,
    l_bits: int,
    adversary_factory: Optional[Callable[[], Adversary]],
) -> SweepPoint:
    service = ConsensusService(RunSpec(n=n, t=t, l_bits=l_bits))
    config = service.config
    adversary = adversary_factory() if adversary_factory else Adversary()
    result = service.run((1 << l_bits) - 1, adversary=adversary)
    if not (result.consistent and result.valid):
        raise AssertionError(
            "sweep point n=%d t=%d L=%d produced an inconsistent run"
            % (n, t, l_bits)
        )
    b = default_b(n)
    analytic = config.generations * (
        matching_stage_bits(n, t, config.d_bits, b)
        + checking_stage_bits(n, t, b)
    )
    return SweepPoint(
        n=n,
        t=t,
        l_bits=l_bits,
        d_bits=config.d_bits,
        generations=config.generations,
        total_bits=result.total_bits,
        analytic_bits=analytic,
        per_bit=result.total_bits / l_bits,
        asymptote=leading_term_per_bit(n, t),
    )


def sweep_l(
    n: int,
    t: int,
    l_values: Sequence[int],
    adversary_factory: Optional[Callable[[], Adversary]] = None,
) -> List[SweepPoint]:
    """Measure total complexity across message lengths."""
    return [_run_point(n, t, l, adversary_factory) for l in l_values]


def sweep_n(
    n_values: Sequence[int],
    l_bits: int,
    adversary_factory: Optional[Callable[[], Adversary]] = None,
) -> List[SweepPoint]:
    """Measure total complexity across network sizes (t = ⌊(n-1)/3⌋)."""
    return [
        _run_point(n, (n - 1) // 3, l_bits, adversary_factory)
        for n in n_values
    ]


# -- fault-injection sweeps ---------------------------------------------------

#: Deprecated module attributes and their canonical replacements; kept
#: as import shims (module ``__getattr__``) that warn exactly once.
_DEPRECATED = {
    "ATTACKS": "repro.processors.ATTACKS",
    "make_attack": "repro.processors.make_attack",
}
_DEPRECATION_WARNED: set = set()
#: Memoized shim for the historical module-constant ``ATTACKS`` dict,
#: so repeated accesses return one object (identity-stable, like the
#: constant it replaces) instead of rebuilding factories per access.
_ATTACKS_SHIM: Optional[dict] = None


def __getattr__(name: str):
    """Deprecated aliases of the canonical attack registry.

    ``repro.analysis.sweeps.ATTACKS`` and ``.make_attack`` moved to
    :mod:`repro.processors`; these shims keep pre-service callers
    working and emit one :class:`DeprecationWarning` per name per
    process.  The shimmed ``ATTACKS`` preserves its historical shape —
    a dict of ``(n, t, l_bits) -> Adversary`` factories over the pinned
    fault-grid attacks.
    """
    if name not in _DEPRECATED:
        raise AttributeError(
            "module %r has no attribute %r" % (__name__, name)
        )
    if name not in _DEPRECATION_WARNED:
        _DEPRECATION_WARNED.add(name)
        warnings.warn(
            "repro.analysis.sweeps.%s is deprecated; use %s"
            % (name, _DEPRECATED[name]),
            DeprecationWarning,
            stacklevel=2,
        )
    if name == "make_attack":
        return _make_attack
    global _ATTACKS_SHIM
    if _ATTACKS_SHIM is None:
        _ATTACKS_SHIM = {
            attack: (
                lambda n, t, l_bits, _attack=attack: _make_attack(
                    _attack, n, t, l_bits
                )
            )
            for attack in FAULT_GRID_ATTACKS
        }
    return _ATTACKS_SHIM


@dataclass(frozen=True)
class FaultSweepPoint:
    """One measured point of a fault-injection sweep."""

    n: int
    t: int
    l_bits: int
    attack: str
    total_bits: int
    generations: int
    diagnosis_count: int
    default_used: bool

    @property
    def diagnosis_bound(self) -> int:
        """Theorem 1's ceiling on diagnosis stages: ``t(t + 1)``."""
        return self.t * (self.t + 1)


def _run_fault_point(
    n: int, t: int, l_bits: int, attack: str, vectorized: bool
) -> FaultSweepPoint:
    spec = RunSpec(
        n=n, t=t, l_bits=l_bits, attack=attack, vectorized=vectorized
    )
    service = ConsensusService(spec)
    config = service.config
    result = service.run((1 << l_bits) - 1)
    if not (result.consistent and result.valid):
        raise AssertionError(
            "fault point n=%d t=%d L=%d attack=%s broke consensus"
            % (n, t, l_bits, attack)
        )
    if result.diagnosis_count > t * (t + 1):
        raise AssertionError(
            "attack %s at n=%d forced %d diagnoses, above the t(t+1)=%d "
            "bound" % (attack, n, result.diagnosis_count, t * (t + 1))
        )
    return FaultSweepPoint(
        n=n,
        t=t,
        l_bits=l_bits,
        attack=attack,
        total_bits=result.total_bits,
        generations=config.generations,
        diagnosis_count=result.diagnosis_count,
        default_used=result.default_used,
    )


def sweep_faults(
    n_values: Sequence[int],
    l_bits: int,
    attacks: Optional[Sequence[str]] = None,
    vectorized: bool = True,
) -> List[FaultSweepPoint]:
    """Fault-injection grid: every ``(n, attack)`` pair, exact bit counts.

    Runs the real protocol under each named attack (t = ⌊(n-1)/3⌋) and
    asserts consistency, validity and the ``t(t+1)`` diagnosis bound.

    Args:
        n_values: network sizes to sweep (each with maximal ``t``).
        l_bits: the consensus value width for every point.
        attacks: attack names from :data:`repro.processors.ATTACKS`;
            default the pinned
            :data:`repro.processors.FAULT_GRID_ATTACKS` grid, sorted.
        vectorized: ``True`` (default) runs the vectorized adversarial
            path, whose diagnosis stage dispatches per-generation
            grouped broadcasts — practical at ``n = 31/63/127``;
            ``False`` forces the scalar reference engine (the
            benchmarks' byte-identity baseline).

    Returns:
        One :class:`FaultSweepPoint` per ``(n, attack)`` pair, in grid
        order (``n`` outer, attack inner).
    """
    names = (
        list(attacks) if attacks is not None
        else sorted(FAULT_GRID_ATTACKS)
    )
    return [
        _run_fault_point(n, (n - 1) // 3, l_bits, attack, vectorized)
        for n in n_values
        for attack in names
    ]
