"""Parameter-sweep drivers shared by the CLI and the benchmark harness.

Each sweep runs the real protocol (never just the formulas), collects
exact bit counts, and returns plain dataclass rows, so callers can print,
plot or assert over them without re-running simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.analysis.complexity import (
    checking_stage_bits,
    leading_term_per_bit,
    matching_stage_bits,
)
from repro.broadcast_bit.ideal import default_b
from repro.core.config import ConsensusConfig
from repro.core.consensus import MultiValuedConsensus
from repro.processors.adversary import Adversary


@dataclass(frozen=True)
class SweepPoint:
    """One measured point of an L- or n-sweep."""

    n: int
    t: int
    l_bits: int
    d_bits: int
    generations: int
    total_bits: int
    analytic_bits: float
    per_bit: float
    asymptote: float

    @property
    def ratio_to_analytic(self) -> float:
        return self.total_bits / self.analytic_bits

    @property
    def ratio_to_asymptote(self) -> float:
        return self.per_bit / self.asymptote


def _run_point(
    n: int,
    t: int,
    l_bits: int,
    adversary_factory: Optional[Callable[[], Adversary]],
) -> SweepPoint:
    config = ConsensusConfig.create(n=n, t=t, l_bits=l_bits)
    adversary = adversary_factory() if adversary_factory else Adversary()
    result = MultiValuedConsensus(config, adversary=adversary).run(
        [(1 << l_bits) - 1] * n
    )
    if not (result.consistent and result.valid):
        raise AssertionError(
            "sweep point n=%d t=%d L=%d produced an inconsistent run"
            % (n, t, l_bits)
        )
    b = default_b(n)
    analytic = config.generations * (
        matching_stage_bits(n, t, config.d_bits, b)
        + checking_stage_bits(n, t, b)
    )
    return SweepPoint(
        n=n,
        t=t,
        l_bits=l_bits,
        d_bits=config.d_bits,
        generations=config.generations,
        total_bits=result.total_bits,
        analytic_bits=analytic,
        per_bit=result.total_bits / l_bits,
        asymptote=leading_term_per_bit(n, t),
    )


def sweep_l(
    n: int,
    t: int,
    l_values: Sequence[int],
    adversary_factory: Optional[Callable[[], Adversary]] = None,
) -> List[SweepPoint]:
    """Measure total complexity across message lengths."""
    return [_run_point(n, t, l, adversary_factory) for l in l_values]


def sweep_n(
    n_values: Sequence[int],
    l_bits: int,
    adversary_factory: Optional[Callable[[], Adversary]] = None,
) -> List[SweepPoint]:
    """Measure total complexity across network sizes (t = ⌊(n-1)/3⌋)."""
    return [
        _run_point(n, (n - 1) // 3, l_bits, adversary_factory)
        for n in n_values
    ]
