"""Parameter-sweep drivers shared by the CLI and the benchmark harness.

Each sweep runs the real protocol (never just the formulas), collects
exact bit counts, and returns plain dataclass rows, so callers can print,
plot or assert over them without re-running simulations.

Fault-injection sweeps (:func:`sweep_faults`) run the same grids under a
named attack from :data:`ATTACKS` — a registry of deterministic adversary
factories sized to ``(n, t, l_bits)`` so the same attack name scales from
``n = 4`` to the large-n regime (31/63/127) the vectorized adversarial
path and its grouped diagnosis broadcasts make practical.  Faulty pids
are chosen so the attack actually bites:
lexicographic ``P_match`` prefers low pids, so attacks that must operate
*inside* ``P_match`` (symbol corruption, staged equivocation, the
slow-bleed planner) control low pids, while attacks that operate from
outside (crash, false detection, trust poisoning) control high pids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.complexity import (
    checking_stage_bits,
    leading_term_per_bit,
    matching_stage_bits,
)
from repro.broadcast_bit.ideal import default_b
from repro.core.config import ConsensusConfig
from repro.core.consensus import MultiValuedConsensus
from repro.processors.adversary import Adversary
from repro.processors.byzantine import (
    CrashAdversary,
    FalseDetectionAdversary,
    SlowBleedAdversary,
    StagedEquivocationAdversary,
    SymbolCorruptionAdversary,
    TrustPoisoningAdversary,
)


@dataclass(frozen=True)
class SweepPoint:
    """One measured point of an L- or n-sweep."""

    n: int
    t: int
    l_bits: int
    d_bits: int
    generations: int
    total_bits: int
    analytic_bits: float
    per_bit: float
    asymptote: float

    @property
    def ratio_to_analytic(self) -> float:
        return self.total_bits / self.analytic_bits

    @property
    def ratio_to_asymptote(self) -> float:
        return self.per_bit / self.asymptote


def _run_point(
    n: int,
    t: int,
    l_bits: int,
    adversary_factory: Optional[Callable[[], Adversary]],
) -> SweepPoint:
    config = ConsensusConfig.create(n=n, t=t, l_bits=l_bits)
    adversary = adversary_factory() if adversary_factory else Adversary()
    result = MultiValuedConsensus(config, adversary=adversary).run(
        [(1 << l_bits) - 1] * n
    )
    if not (result.consistent and result.valid):
        raise AssertionError(
            "sweep point n=%d t=%d L=%d produced an inconsistent run"
            % (n, t, l_bits)
        )
    b = default_b(n)
    analytic = config.generations * (
        matching_stage_bits(n, t, config.d_bits, b)
        + checking_stage_bits(n, t, b)
    )
    return SweepPoint(
        n=n,
        t=t,
        l_bits=l_bits,
        d_bits=config.d_bits,
        generations=config.generations,
        total_bits=result.total_bits,
        analytic_bits=analytic,
        per_bit=result.total_bits / l_bits,
        asymptote=leading_term_per_bit(n, t),
    )


def sweep_l(
    n: int,
    t: int,
    l_values: Sequence[int],
    adversary_factory: Optional[Callable[[], Adversary]] = None,
) -> List[SweepPoint]:
    """Measure total complexity across message lengths."""
    return [_run_point(n, t, l, adversary_factory) for l in l_values]


def sweep_n(
    n_values: Sequence[int],
    l_bits: int,
    adversary_factory: Optional[Callable[[], Adversary]] = None,
) -> List[SweepPoint]:
    """Measure total complexity across network sizes (t = ⌊(n-1)/3⌋)."""
    return [
        _run_point(n, (n - 1) // 3, l_bits, adversary_factory)
        for n in n_values
    ]


# -- fault-injection sweeps ---------------------------------------------------

#: Deterministic adversary factories keyed by attack name; each takes
#: ``(n, t, l_bits)`` and controls at most ``t`` processors.
ATTACKS: Dict[str, Callable[[int, int, int], Adversary]] = {
    # Fail-stop: every faulty processor falls silent from generation 0.
    "crash": lambda n, t, l_bits: CrashAdversary(list(range(n - t, n))),
    # One faulty P_match member corrupts the symbol sent to the last
    # honest processor, which detects and triggers a diagnosis.
    "corrupt": lambda n, t, l_bits: SymbolCorruptionAdversary(
        [0], victims={0: [n - 1]}
    ),
    # Outsiders cry Detected every generation; line 3(f) isolates them.
    "false_detect": lambda n, t, l_bits: FalseDetectionAdversary(
        list(range(n - t, n))
    ),
    # Faulty processors accuse every honest P_match member in their
    # Trust vectors until the over-degree rule isolates them.
    "trust_poison": lambda n, t, l_bits: TrustPoisoningAdversary(
        list(range(n - t, n))
    ),
    # Self-consistent equivocation: pid 0 shows the last processor a
    # genuine codeword of a different value.  Zero differs from the
    # sweeps' all-ones input in every generation (all-ones would be a
    # silent no-op there: equivocating to the value actually held).
    "equivocate": lambda n, t, l_bits: StagedEquivocationAdversary(
        [0], deceived=[n - 1], alt_value=0
    ),
    # Worst-case diagnosis count: one bad edge spent per generation.
    "slow_bleed": lambda n, t, l_bits: SlowBleedAdversary(
        list(range(t))
    ),
}


def make_attack(name: str, n: int, t: int, l_bits: int) -> Adversary:
    """Instantiate the named attack for an ``(n, t)`` deployment."""
    try:
        factory = ATTACKS[name]
    except KeyError:
        raise ValueError(
            "unknown attack %r (choose from %s)" % (name, sorted(ATTACKS))
        )
    if t < 1:
        raise ValueError("attack %r needs t >= 1, got t=%d" % (name, t))
    return factory(n, t, l_bits)


@dataclass(frozen=True)
class FaultSweepPoint:
    """One measured point of a fault-injection sweep."""

    n: int
    t: int
    l_bits: int
    attack: str
    total_bits: int
    generations: int
    diagnosis_count: int
    default_used: bool

    @property
    def diagnosis_bound(self) -> int:
        """Theorem 1's ceiling on diagnosis stages: ``t(t + 1)``."""
        return self.t * (self.t + 1)


def _run_fault_point(
    n: int, t: int, l_bits: int, attack: str, vectorized: bool
) -> FaultSweepPoint:
    config = ConsensusConfig.create(n=n, t=t, l_bits=l_bits)
    adversary = make_attack(attack, n, t, l_bits)
    result = MultiValuedConsensus(
        config, adversary=adversary, vectorized=vectorized
    ).run([(1 << l_bits) - 1] * n)
    if not (result.consistent and result.valid):
        raise AssertionError(
            "fault point n=%d t=%d L=%d attack=%s broke consensus"
            % (n, t, l_bits, attack)
        )
    if result.diagnosis_count > t * (t + 1):
        raise AssertionError(
            "attack %s at n=%d forced %d diagnoses, above the t(t+1)=%d "
            "bound" % (attack, n, result.diagnosis_count, t * (t + 1))
        )
    return FaultSweepPoint(
        n=n,
        t=t,
        l_bits=l_bits,
        attack=attack,
        total_bits=result.total_bits,
        generations=config.generations,
        diagnosis_count=result.diagnosis_count,
        default_used=result.default_used,
    )


def sweep_faults(
    n_values: Sequence[int],
    l_bits: int,
    attacks: Optional[Sequence[str]] = None,
    vectorized: bool = True,
) -> List[FaultSweepPoint]:
    """Fault-injection grid: every ``(n, attack)`` pair, exact bit counts.

    Runs the real protocol under each named attack (t = ⌊(n-1)/3⌋) and
    asserts consistency, validity and the ``t(t+1)`` diagnosis bound.

    Args:
        n_values: network sizes to sweep (each with maximal ``t``).
        l_bits: the consensus value width for every point.
        attacks: attack names from :data:`ATTACKS`; default all, sorted.
        vectorized: ``True`` (default) runs the vectorized adversarial
            path, whose diagnosis stage dispatches per-generation
            grouped broadcasts — practical at ``n = 31/63/127``;
            ``False`` forces the scalar reference engine (the
            benchmarks' byte-identity baseline).

    Returns:
        One :class:`FaultSweepPoint` per ``(n, attack)`` pair, in grid
        order (``n`` outer, attack inner).
    """
    names = list(attacks) if attacks is not None else sorted(ATTACKS)
    return [
        _run_fault_point(n, (n - 1) // 3, l_bits, attack, vectorized)
        for n in n_values
        for attack in names
    ]
