"""The paper's complexity formulas (§3.4) and comparison models (§1, §4).

Notation follows the paper: ``n`` processors, ``t`` faults, ``L`` total
bits, ``D`` bits per generation, ``B`` = bits per ``Broadcast_Single_Bit``
instance.  All functions return floats (bits); measured values are
integers, and benchmarks compare the two within the rounding slack that
integer generation counts introduce.

Equation (1), per the paper's stage accounting:

* matching:  ``n(n-1)/(n-2t) · D + n(n-1) · B``   per generation
* checking:  ``t · B``                            per generation
* diagnosis: ``(n-t)/(n-2t) · D · B + n(n-t) · B``  at most ``t(t+1)`` times

Equation (2) plugs in the optimal ``D``; Equation (3) sets ``B = Θ(n²)``.
"""

from __future__ import annotations

import math

from repro.coding.reed_solomon import min_symbol_bits


def _validate(n: int, t: int) -> None:
    if n < 2:
        raise ValueError("need n >= 2, got %d" % n)
    if t < 0:
        raise ValueError("t must be non-negative, got %d" % t)
    if n - 2 * t < 1:
        raise ValueError(
            "code dimension n - 2t must be positive (n=%d, t=%d)" % (n, t)
        )


# -- Equation (1): per-stage costs ------------------------------------------


def matching_stage_bits(n: int, t: int, d_bits: float, b: float) -> float:
    """Matching-stage bits per generation.

    Every processor sends at most ``n - 1`` symbols of ``D/(n-2t)`` bits
    and broadcasts ``n - 1`` M-flags: ``n(n-1)D/(n-2t) + n(n-1)B``.
    """
    _validate(n, t)
    return n * (n - 1) * d_bits / (n - 2 * t) + n * (n - 1) * b


def checking_stage_bits(n: int, t: int, b: float) -> float:
    """Checking-stage bits per generation: ``t`` Detected broadcasts."""
    _validate(n, t)
    return t * b


def diagnosis_stage_bits(n: int, t: int, d_bits: float, b: float) -> float:
    """Diagnosis-stage bits per occurrence.

    ``n - t`` members of P_match broadcast a ``D/(n-2t)``-bit symbol and
    all ``n`` processors broadcast ``n - t`` Trust bits:
    ``(n-t)/(n-2t) · D · B + n(n-t) · B``.
    """
    _validate(n, t)
    return (n - t) * d_bits * b / (n - 2 * t) + n * (n - t) * b


def failure_free_total_bits(
    n: int, t: int, l_bits: float, d_bits: float, b: float
) -> float:
    """Equation (1) without the diagnosis term: the failure-free cost.

    When no processor deviates, diagnosis never fires and the algorithm
    spends exactly ``⌈L/D⌉`` generations of matching + checking — the
    model the measured failure-free sweeps are fitted against.  The
    ``L``-scaling part is the matching data path,
    ``n(n-1)/(n-2t) · D`` per generation — the paper's O(nL) term —
    while the M-flag and Detected broadcasts contribute the
    ``(n(n-1) + t) B`` per-generation overhead that washes out as
    ``L → ∞`` with the optimal ``D ~ √L``.
    """
    _validate(n, t)
    if d_bits <= 0:
        raise ValueError("d_bits must be positive, got %r" % d_bits)
    generations = math.ceil(l_bits / d_bits)
    per_generation = (
        matching_stage_bits(n, t, d_bits, b) + checking_stage_bits(n, t, b)
    )
    return per_generation * generations


def consensus_total_bits(
    n: int, t: int, l_bits: float, d_bits: float, b: float
) -> float:
    """Equation (1): worst-case total bits of the consensus algorithm.

    ``L/D`` generations of matching + checking, plus at most ``t(t+1)``
    diagnosis stages.
    """
    _validate(n, t)
    if d_bits <= 0:
        raise ValueError("d_bits must be positive, got %r" % d_bits)
    generations = l_bits / d_bits
    per_generation = (
        matching_stage_bits(n, t, d_bits, b) + checking_stage_bits(n, t, b)
    )
    return per_generation * generations + t * (t + 1) * diagnosis_stage_bits(
        n, t, d_bits, b
    )


# -- Equation (2): optimal D --------------------------------------------------


def optimal_d(n: int, t: int, l_bits: float, b: float) -> float:
    """The paper's optimal generation size.

    ``D* = sqrt( (n² - n + t)(n - 2t) L / (t(t+1)(n - t)) ) · sqrt(B)``...

    Derivation check: minimising Eq. (1) over D balances the
    ``(n(n-1)/(n-2t) D + (n(n-1)+t)B) L/D`` generation term against the
    ``t(t+1)(n-t)/(n-2t) D B`` diagnosis term, giving

    ``D* = sqrt( (n² - n + t) B (n - 2t) L / (t(t+1)(n - t) B) )``
        = ``sqrt( (n² - n + t)(n - 2t) L / (t(t+1)(n - t)) )``

    — the ``B`` inside the broadcast-driven terms cancels, matching the
    paper's expression (which is independent of ``B``)... up to the paper's
    simplification of ignoring the non-broadcast D-term; we follow the
    paper's formula exactly.
    """
    _validate(n, t)
    if t == 0:
        # No faults: no diagnosis term; one generation is optimal.
        return float(l_bits)
    numerator = (n * n - n + t) * (n - 2 * t) * l_bits
    denominator = t * (t + 1) * (n - t)
    return math.sqrt(numerator / denominator)


def optimal_d_feasible(n: int, t: int, l_bits: int, b: float) -> int:
    """Optimal D rounded to a feasible value.

    Feasibility: ``D = w (n - 2t)`` for an integer symbol width ``w`` that
    is representable by our codes — either a direct field width
    (``c_min <= w <= 16``) or a multiple of the minimal field width
    (interleaved rows) — with ``D <= L`` when possible.
    """
    _validate(n, t)
    if l_bits < 1:
        raise ValueError("l_bits must be positive, got %d" % l_bits)
    k = n - 2 * t
    c_min = min_symbol_bits(n)
    target = optimal_d(n, t, l_bits, b) / k
    if target <= 16:
        width = max(c_min, min(16, int(round(target)) or 1))
    else:
        width = max(1, int(round(target / c_min))) * c_min
    # Never exceed L (a single generation suffices then).
    while width > c_min and width * k > l_bits:
        if width > 16 and width - c_min >= c_min:
            width -= c_min
        else:
            width = max(c_min, min(width - 1, 16))
    return width * k


def consensus_total_bits_optimal(
    n: int, t: int, l_bits: float, b: float
) -> float:
    """Equation (2): total bits with the optimal ``D`` plugged in.

    ``n(n-1)/(n-2t) L + 2B sqrt(L) sqrt((n²-n+t) t(t+1)(n-t)) / (n-2t)
    + t(t+1) n (n-t) B``
    """
    _validate(n, t)
    if t == 0:
        return matching_stage_bits(n, t, l_bits, b)
    first = n * (n - 1) * l_bits / (n - 2 * t)
    # The balanced generation/diagnosis terms at D*: each equals
    # B * sqrt((n²-n+t) t(t+1)(n-t) L / (n-2t)).
    second = (
        2.0
        * b
        * math.sqrt(
            (n * n - n + t) * t * (t + 1) * (n - t) * l_bits / (n - 2 * t)
        )
    )
    third = t * (t + 1) * n * (n - t) * b
    return first + second + third


def leading_term_per_bit(n: int, t: int) -> float:
    """The asymptotic per-L-bit cost ``n(n-1)/(n-2t)``.

    For ``t = ⌊(n-1)/3⌋`` this is roughly ``3(n-1)`` — linear in ``n``,
    the headline claim of the paper.
    """
    _validate(n, t)
    return n * (n - 1) / (n - 2 * t)


# -- §1 comparisons -------------------------------------------------------------


def bitwise_baseline_bits(l_bits: float, per_bit_consensus: float) -> float:
    """Naive baseline: ``L`` independent 1-bit consensus instances.

    ``per_bit_consensus`` is the cost of one binary consensus; the paper's
    lower-bound argument uses ``Ω(n²)`` per bit, our measured Phase-King
    costs ``Θ(n²t)``.
    """
    if per_bit_consensus <= 0:
        raise ValueError("per_bit_consensus must be positive")
    return l_bits * per_bit_consensus


def fitzi_hirt_bits(
    n: int, t: int, l_bits: float, kappa: float, b: float
) -> float:
    """Fitzi-Hirt (PODC 2006) complexity model: ``O(nL + n³(n + κ))``.

    Concrete constants follow our reimplementation
    (:mod:`repro.baselines.fitzi_hirt`): ``n(n-1)/(n-2t) L`` for the coded
    joint delivery (same dispersal cost as ours), plus digest agreement of
    ``(2κ + 1)`` bits of 1-bit consensus at ``B`` each plus per-processor
    digest exchange ``n(n-1)κ``.  Error probability >= 2^-κ (hash
    collisions), which is the term our algorithm removes.
    """
    _validate(n, t)
    delivery = n * (n - 1) * l_bits / (n - 2 * t)
    digest_exchange = n * (n - 1) * kappa
    digest_agreement = (2 * kappa + 1) * n * b
    return delivery + digest_exchange + digest_agreement


def linbft_amortized_bits(
    n: int, l_bits: float, kappa: float = 256.0
) -> float:
    """LinBFT (Yang 2018) amortized communication model: ``O(nL + nκ)``.

    LinBFT reaches amortized-linear communication per value by pipelining
    erasure-coded block dissemination with three threshold-signature
    voting rounds: ``n L`` bits of coded delivery plus ``3 n κ`` bits of
    aggregated signatures, with ``κ`` the signature security parameter.
    The overlay is the natural asymptotic companion to our sweep — the
    same ``Θ(nL)`` leading term, but bought with cryptographic
    assumptions (failure probability ``2^-κ``) rather than the paper's
    error-free coding, and amortized over a pipeline rather than
    worst-case per instance.
    """
    if n < 2:
        raise ValueError("need n >= 2, got %d" % n)
    if kappa <= 0:
        raise ValueError("kappa must be positive, got %r" % kappa)
    return n * l_bits + 3.0 * n * kappa


# -- measured sweep --------------------------------------------------------------


def measured_complexity_sweep(
    ns, l_bits: int, kappa: float = 128.0
) -> list:
    """Run one failure-free instance per ``n`` and compare bits to models.

    For each ``n`` (with ``t = ⌊(n-1)/3⌋``) this runs the real engine at
    ``l_bits`` and records, next to the measured totals:

    * ``onl_bits`` — the O(nL) data-path term
      ``n(n-1)/(n-2t) · D · ⌈L/D⌉`` (padded L); the measured
      matching-symbol bits must equal it *exactly*;
    * ``model_bits`` — :func:`failure_free_total_bits` at the engine's
      actual ``D``, the full failure-free Eq. (1) prediction;
    * the §1 comparison curves at the same point:
      :func:`fitzi_hirt_bits`, :func:`bitwise_baseline_bits` and the
      :func:`linbft_amortized_bits` overlay.

    Failure-free totals are input-independent, so the sweep is
    deterministic.  Core modules are imported lazily — analysis stays
    import-light for the formula-only consumers.
    """
    from repro.broadcast_bit.ideal import default_b
    from repro.core.config import ConsensusConfig
    from repro.core.consensus import MultiValuedConsensus

    records = []
    for n in ns:
        t = (n - 1) // 3
        config = ConsensusConfig.create(n=n, t=t, l_bits=int(l_bits))
        result = MultiValuedConsensus(config).run(
            [(1 << config.l_bits) - 1] * n
        )
        if not result.error_free:
            raise AssertionError("failure-free run deviated at n=%d" % n)
        measured = result.meter.total_bits
        data_bits = sum(
            bits
            for tag, bits in result.meter.bits_by_tag.items()
            if tag.endswith("matching.symbols")
        )
        b = default_b(n)
        padded = config.generations * config.d_bits
        onl = leading_term_per_bit(n, t) * padded
        model = failure_free_total_bits(
            n, t, config.l_bits, config.d_bits, b
        )
        records.append(
            {
                "n": n,
                "t": t,
                "l_bits": config.l_bits,
                "d_bits": config.d_bits,
                "generations": config.generations,
                "b": b,
                "measured_bits": measured,
                "data_bits": data_bits,
                "onl_bits": onl,
                "model_bits": model,
                "model_ratio": measured / model,
                "fitzi_hirt_bits": fitzi_hirt_bits(
                    n, t, config.l_bits, kappa, b
                ),
                "bitwise_bits": bitwise_baseline_bits(config.l_bits, b),
                "linbft_bits": linbft_amortized_bits(
                    n, config.l_bits, kappa
                ),
            }
        )
    return records


def fit_model_factor(records) -> float:
    """Least-squares scale of measured totals onto the Eq. (1) model.

    Minimises ``Σ (measured - α · model)²`` over the sweep, where
    ``model`` is :func:`failure_free_total_bits` — the analytic curve
    whose L-scaling term is the paper's O(nL).  The acceptance check
    asserts ``α ≈ 1`` and every per-point ``measured / (α · model)``
    stays within a constant band: the engine implements the formula, no
    hidden power of ``n`` snuck into the data plane.  (The bare O(nL)
    term alone cannot absorb a fixed-L sweep — the ``n(n-1)B``
    per-generation flag overhead legitimately dominates small L, which
    is exactly what the model curve accounts for; the data-path bits
    are asserted *equal* to the O(nL) term instead.)
    """
    num = sum(r["measured_bits"] * r["model_bits"] for r in records)
    den = sum(r["model_bits"] ** 2 for r in records)
    if den <= 0:
        raise ValueError("sweep records carry no model term")
    return num / den


def crossover_vs_bitwise(n: int, t: int, b: float) -> float:
    """The L beyond which the paper's algorithm beats the bitwise baseline.

    Solves ``consensus_total_bits_optimal(L) = bitwise(L)`` with the
    ``Ω(n²)`` per-bit model; above the returned L ours is strictly cheaper.
    Uses a simple doubling search (the difference is monotone for large L).
    """
    _validate(n, t)
    per_bit = b

    def ours_minus_baseline(l_bits: float) -> float:
        return consensus_total_bits_optimal(n, t, l_bits, b) - (
            bitwise_baseline_bits(l_bits, per_bit)
        )

    if ours_minus_baseline(1.0) <= 0:
        return 1.0
    high = 2.0
    while ours_minus_baseline(high) > 0:
        high *= 2
        if high > 2 ** 60:
            return math.inf
    low = high / 2
    for _ in range(200):
        mid = (low + high) / 2
        if ours_minus_baseline(mid) > 0:
            low = mid
        else:
            high = mid
    return high


# -- §4 broadcast ----------------------------------------------------------------


def broadcast_delivery_bits(n: int, t: int, d_bits: float) -> float:
    """Failure-free bits per broadcast generation.

    Source disperses one ``D/(n-1-t)``-bit symbol to each of ``n - 1``
    peers; each peer forwards its symbol to the ``n - 2`` others:
    ``(n-1)² D / (n-1-t)``, which is ``<= 1.5 (n-1) D`` for ``t < n/3``.
    """
    _validate(n, t)
    if n - 1 - t < 1:
        raise ValueError("broadcast needs n - 1 - t >= 1")
    return (n - 1) * (n - 1) * d_bits / (n - 1 - t)


def broadcast_diagnosis_bits(n: int, t: int, d_bits: float, b: float) -> float:
    """Bits per broadcast diagnosis: peers broadcast their symbol, the
    source broadcasts its full codeword, everyone broadcasts trust bits."""
    _validate(n, t)
    symbol_bits = d_bits / (n - 1 - t)
    peers = n - 1
    return (
        peers * symbol_bits * b  # peers re-broadcast their symbol
        + peers * symbol_bits * b  # source broadcasts its codeword
        + n * peers * b  # trust vectors
        + peers * b  # detected flags
    )


def broadcast_total_bits(
    n: int, t: int, l_bits: float, d_bits: float, b: float
) -> float:
    """Total §4 multi-valued broadcast bits: ``< 1.5(n-1)L + Θ(n⁴ L^0.5)``
    with the optimal D."""
    _validate(n, t)
    generations = l_bits / d_bits
    detected_per_generation = (n - 1) * b
    return (
        broadcast_delivery_bits(n, t, d_bits) * generations
        + detected_per_generation * generations
        + (t * (t + 1) + t) * broadcast_diagnosis_bits(n, t, d_bits, b)
    )


def broadcast_optimal_d(n: int, t: int, l_bits: float, b: float) -> float:
    """D minimising :func:`broadcast_total_bits` (balance the two terms)."""
    _validate(n, t)
    if t == 0:
        return float(l_bits)
    # delivery ~ a·L, flags ~ f·L/D, diagnosis ~ g·D with
    # f = (n-1)B, g = (t(t+1)+t)·(2(n-1)B/(n-1-t))
    f = (n - 1) * b * l_bits
    g = (t * (t + 1) + t) * 2 * (n - 1) * b / (n - 1 - t)
    return math.sqrt(f / g)
