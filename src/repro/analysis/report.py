"""Human-readable reports over finished runs.

A :class:`~repro.core.result.ConsensusResult` carries everything needed to
audit a run — per-generation outcomes, the bit meter, diagnosis events.
These helpers render that into the fixed-width reports used by the CLI
and the benchmark harness, and reconcile measured bits against the
Eq. (1) predictions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.complexity import (
    checking_stage_bits,
    diagnosis_stage_bits,
    matching_stage_bits,
)
from repro.core.config import ConsensusConfig
from repro.core.result import ConsensusResult, GenerationOutcome


def format_table(
    header: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Fixed-width text table (no external dependencies)."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    headers = [str(cell) for cell in header]
    widths = [
        max([len(headers[i])] + [len(row[i]) for row in str_rows])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(headers[i].rjust(widths[i]) for i in range(len(headers)))
    ]
    lines.append("-" * len(lines[0]))
    for row in str_rows:
        lines.append(
            "  ".join(row[i].rjust(widths[i]) for i in range(len(row)))
        )
    return "\n".join(lines)


def generation_rows(result: ConsensusResult) -> List[Tuple]:
    """One row per generation: outcome, match set, diagnosis details."""
    rows = []
    for record in result.generation_results:
        rows.append(
            (
                record.generation,
                record.outcome.value,
                "-" if record.p_match is None else len(record.p_match),
                len(record.removed_edges),
                ",".join(str(p) for p in record.isolated) or "-",
            )
        )
    return rows


def stage_rows(
    result: ConsensusResult, config: ConsensusConfig
) -> List[Tuple]:
    """Measured bits per stage vs the Eq. (1) prediction.

    Predictions use the configured backend's analytic ``B``; matching and
    checking are per-generation (multiplied by generations actually run),
    diagnosis by the number of diagnosis stages performed.
    """
    from repro.processors import Adversary
    from repro.network.metrics import BitMeter

    backend = config.make_backend(BitMeter(), Adversary(), None)
    b = backend.bits_per_instance()
    generations_run = len(result.generation_results)
    full_generations = sum(
        1
        for record in result.generation_results
        if record.outcome is not GenerationOutcome.NO_MATCH_DEFAULT
    )

    def measured(suffix: str) -> int:
        return sum(
            bits
            for tag, bits in result.meter.bits_by_tag.items()
            if ".%s" % suffix in tag
        )

    rows = []
    rows.append(
        (
            "matching",
            measured("matching"),
            int(matching_stage_bits(config.n, config.t, config.d_bits, b))
            * generations_run,
        )
    )
    rows.append(
        (
            "checking",
            measured("checking"),
            int(checking_stage_bits(config.n, config.t, b))
            * full_generations,
        )
    )
    rows.append(
        (
            "diagnosis",
            measured("diagnosis"),
            int(diagnosis_stage_bits(config.n, config.t, config.d_bits, b))
            * result.diagnosis_count,
        )
    )
    return rows


def consensus_report(
    result: ConsensusResult, config: Optional[ConsensusConfig] = None
) -> str:
    """Render a complete post-run report."""
    lines = []
    lines.append("consensus run report")
    lines.append("====================")
    lines.append("consistent : %s" % result.consistent)
    lines.append("valid      : %s" % result.valid)
    if result.value is not None:
        lines.append("value      : %#x" % result.value)
    lines.append("default    : %s" % result.default_used)
    lines.append("diagnoses  : %d" % result.diagnosis_count)
    lines.append("total bits : %d" % result.total_bits)
    lines.append("")
    lines.append("per-generation outcomes:")
    lines.append(
        format_table(
            ("gen", "outcome", "|P_match|", "edges removed", "isolated"),
            generation_rows(result),
        )
    )
    if config is not None:
        lines.append("")
        lines.append("measured vs Eq. (1) worst-case prediction:")
        lines.append(
            format_table(
                ("stage", "measured", "predicted (upper bound)"),
                stage_rows(result, config),
            )
        )
    return "\n".join(lines)
