"""Closed-form communication-complexity models from the paper.

Everything the paper's evaluation claims (Eq. (1)-(3), §3.4; the §4
broadcast bound; the comparisons of §1) is reproduced here as explicit
formulas, so benchmarks can reconcile measured bit counts against the
analytic predictions.
"""

from repro.analysis.plotting import ascii_plot
from repro.analysis.report import consensus_report, format_table
from repro.analysis.sweeps import SweepPoint, sweep_l, sweep_n
from repro.analysis.complexity import (
    bitwise_baseline_bits,
    broadcast_total_bits,
    checking_stage_bits,
    consensus_total_bits,
    consensus_total_bits_optimal,
    crossover_vs_bitwise,
    diagnosis_stage_bits,
    fitzi_hirt_bits,
    leading_term_per_bit,
    matching_stage_bits,
    optimal_d,
    optimal_d_feasible,
)

__all__ = [
    "ascii_plot",
    "consensus_report",
    "format_table",
    "SweepPoint",
    "sweep_l",
    "sweep_n",
    "matching_stage_bits",
    "checking_stage_bits",
    "diagnosis_stage_bits",
    "consensus_total_bits",
    "consensus_total_bits_optimal",
    "optimal_d",
    "optimal_d_feasible",
    "leading_term_per_bit",
    "bitwise_baseline_bits",
    "fitzi_hirt_bits",
    "broadcast_total_bits",
    "crossover_vs_bitwise",
]
