"""Dependency-free ASCII charts for sweep results.

The CLI and examples render communication-complexity trends directly in
the terminal; nothing here affects measurements.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


def ascii_plot(
    points: Sequence[Tuple[float, float]],
    width: int = 60,
    height: int = 16,
    logx: bool = False,
    logy: bool = False,
    title: str = "",
    marker: str = "*",
) -> str:
    """Scatter-plot ``(x, y)`` points on a character grid.

    Log axes are useful for the paper's sweeps (L spans decades).  Returns
    a multi-line string; callers print it.
    """
    if not points:
        return "(no data)"
    if width < 8 or height < 4:
        raise ValueError("plot area too small: %dx%d" % (width, height))

    def tx(value: float) -> float:
        if logx:
            if value <= 0:
                raise ValueError("log x-axis requires positive values")
            return math.log10(value)
        return value

    def ty(value: float) -> float:
        if logy:
            if value <= 0:
                raise ValueError("log y-axis requires positive values")
            return math.log10(value)
        return value

    xs = [tx(x) for x, _ in points]
    ys = [ty(y) for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid: List[List[str]] = [
        [" "] * width for _ in range(height)
    ]
    for x, y in zip(xs, ys):
        col = int(round((x - x_low) / x_span * (width - 1)))
        row = int(round((y - y_low) / y_span * (height - 1)))
        grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_top = "%.3g" % (10 ** y_high if logy else y_high)
    y_bottom = "%.3g" % (10 ** y_low if logy else y_low)
    label_width = max(len(y_top), len(y_bottom))
    for index, row_cells in enumerate(grid):
        if index == 0:
            label = y_top.rjust(label_width)
        elif index == height - 1:
            label = y_bottom.rjust(label_width)
        else:
            label = " " * label_width
        lines.append("%s |%s" % (label, "".join(row_cells)))
    lines.append("%s +%s" % (" " * label_width, "-" * width))
    x_left = "%.3g" % (10 ** x_low if logx else x_low)
    x_right = "%.3g" % (10 ** x_high if logx else x_high)
    padding = width - len(x_left) - len(x_right)
    lines.append(
        "%s  %s%s%s"
        % (" " * label_width, x_left, " " * max(1, padding), x_right)
    )
    return "\n".join(lines)
